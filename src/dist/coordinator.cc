#include "dist/coordinator.h"

#include <unistd.h>

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/names.h"
#include "dist/exchange.h"
#include "grid/manifest.h"
#include "util/stopwatch.h"

namespace tpcp {
namespace {

/// The factor-store manifest for `factors`, carrying `checkpoint` when set
/// (same shape Phase2Engine and the tool write).
StoreManifest FactorManifest(const BlockFactorStore& factors,
                             std::optional<Phase2Checkpoint> checkpoint) {
  StoreManifest manifest;
  manifest.kind = StoreManifest::kFactorsKind;
  manifest.grid = factors.grid();
  manifest.rank = factors.rank();
  manifest.checkpoint = std::move(checkpoint);
  return manifest;
}

/// Channel errors get the worker's name attached: a killed worker shows up
/// here as its socket closing, and the caller needs to know which one.
Status Annotate(int worker, const Status& s) {
  if (s.ok()) return s;
  return Status::IOError("dist worker " + std::to_string(worker) + ": " +
                         s.ToString());
}

/// Logical bytes of one xchg/absorb frame — matrix payload bytes
/// (rows*cols*8 per matrix), the same definition
/// DistributedPlan::StepExchangeBytes predicts with. Read from the chunk
/// headers, not by decoding payloads.
Status XchgFrameBytes(const JsonValue& msg, uint64_t* bytes, bool* last) {
  *bytes = 0;
  if (const JsonValue* g = msg.Find("g")) {
    TPCP_ASSIGN_OR_RETURN(const int64_t r, GetInt(*g, "r"));
    TPCP_ASSIGN_OR_RETURN(const int64_t c, GetInt(*g, "c"));
    *bytes += static_cast<uint64_t>(r * c) * sizeof(double);
  }
  const JsonValue* entries = msg.Find("m");
  if (entries == nullptr || !entries->is_array()) {
    return Status::InvalidArgument("xchg frame: missing m");
  }
  for (const JsonValue& entry : entries->array_items()) {
    if (!entry.is_array() || entry.array_items().size() != 2) {
      return Status::InvalidArgument("xchg frame: bad m entry");
    }
    const JsonValue& m = entry.array_items()[1];
    TPCP_ASSIGN_OR_RETURN(const int64_t r, GetInt(m, "r"));
    TPCP_ASSIGN_OR_RETURN(const int64_t c, GetInt(m, "c"));
    *bytes += static_cast<uint64_t>(r * c) * sizeof(double);
  }
  TPCP_ASSIGN_OR_RETURN(*last, GetBoolOr(msg, "last", true));
  return Status::OK();
}

/// One collected exchange chunk awaiting relay.
struct RelayFrame {
  int owner = 0;
  uint64_t bytes = 0;
  bool last = false;
  JsonValue msg;
};

struct ListenGuard {
  int fd;
  ~ListenGuard() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

Status RunDistributedPhase2(BlockFactorStore* factors,
                            const TwoPhaseCpOptions& options,
                            const DistributedRunOptions& dopts,
                            DistributedRunResult* result) {
  if (factors == nullptr || result == nullptr) {
    return Status::InvalidArgument("dist: null factors/result");
  }
  if (dopts.num_workers < 1) {
    return Status::InvalidArgument("dist: num_workers must be >= 1");
  }
  if (!dopts.spawn_worker) {
    return Status::InvalidArgument("dist: spawn_worker callback is required");
  }
  const int num_workers = dopts.num_workers;
  Stopwatch watch;
  const GridPartition& grid = factors->grid();

  // The coordinator's plan is the run's identity; every worker rebuilds it
  // from the init options and must fingerprint identically.
  const UpdateSchedule source_schedule =
      UpdateSchedule::Create(options.schedule, grid);
  const PlannerOptions planner_options = Phase2PlannerOptions(options, grid);
  const ExecutionPlan plan = Planner::Build(source_schedule, planner_options);
  const UpdateSchedule& schedule = plan.schedule();
  const int64_t vi_len = schedule.virtual_iteration_length();
  const DistributedPlan dplan(&plan, options.rank, num_workers);

  // Checkpoint-resume validation, mirrored verbatim from Phase2Engine::Run
  // — a store the engine would refuse to resume is refused here for the
  // same reasons, and vice versa.
  int64_t pos = 0;
  int start_vi = 0;
  result->phase2 = Phase2Result();
  if (options.resume_phase2) {
    auto manifest = ReadManifest(factors->env(), factors->prefix());
    if (manifest.ok() && manifest->checkpoint.has_value()) {
      const Phase2Checkpoint& ckpt = *manifest->checkpoint;
      if (!(manifest->grid == grid) || manifest->rank != factors->rank()) {
        return Status::FailedPrecondition(
            "checkpoint manifest does not describe this factor store");
      }
      if (ckpt.schedule != ScheduleTypeName(options.schedule)) {
        return Status::FailedPrecondition(
            "checkpoint was cut under schedule '" + ckpt.schedule +
            "', not '" + ScheduleTypeName(options.schedule) +
            "'; resume with the same schedule");
      }
      if (ckpt.options_fingerprint != 0 &&
          ckpt.options_fingerprint != options.ResumeFingerprint()) {
        return Status::FailedPrecondition(
            "checkpoint was cut under different math-shaping options "
            "(fingerprint mismatch); resume with the original options");
      }
      if (ckpt.cursor / vi_len != ckpt.iteration) {
        return Status::Corruption(
            "checkpoint cursor disagrees with its iteration count");
      }
      if (ckpt.plan_fingerprint != 0 &&
          ckpt.plan_fingerprint != plan.fingerprint()) {
        return Status::FailedPrecondition(
            "checkpoint was cut under a different execution plan "
            "(reordering/sharding options or buffer geometry differ); "
            "resume with the original plan options");
      }
      if (ckpt.plan_fingerprint == 0 &&
          (plan.stats().reorder_applied || plan.shard_chunk_blocks() > 0)) {
        return Status::FailedPrecondition(
            "checkpoint predates the execution planner and can only "
            "resume under the identity plan; resume with the planner "
            "knobs off");
      }
      pos = ckpt.cursor;
      start_vi = ckpt.iteration;
      result->phase2.fit_trace = ckpt.fit_trace;
    } else if (!manifest.ok() && !manifest.status().IsNotFound()) {
      return manifest.status();
    }
  } else {
    // Fresh run: seed every sub-factor exactly as
    // RefinementState::Initialize(false) would — same source block, same
    // write order — so the workers (which always initialize in resume
    // mode) read the state a single-process fresh run would have written.
    for (int mode = 0; mode < grid.num_modes(); ++mode) {
      for (int64_t part = 0; part < grid.parts(mode); ++part) {
        const std::vector<BlockIndex> slab = factors->SlabBlocks(mode, part);
        if (slab.empty()) {
          return Status::Internal("dist: empty slab for mode " +
                                  std::to_string(mode) + " part " +
                                  std::to_string(part));
        }
        TPCP_ASSIGN_OR_RETURN(const Matrix seed,
                              factors->ReadBlockFactor(slab.front(), mode));
        TPCP_RETURN_IF_ERROR(factors->WriteSubFactor(mode, part, seed));
      }
    }
  }

  // Fleet formation: listen, launch, collect one hello per worker id.
  int port = dopts.listen_port;
  TPCP_ASSIGN_OR_RETURN(const int listen_fd, DistListen(&port));
  ListenGuard listen_guard{listen_fd};
  for (int w = 0; w < num_workers; ++w) {
    TPCP_RETURN_IF_ERROR(dopts.spawn_worker(port, w));
  }
  std::vector<std::unique_ptr<DistChannel>> channels(
      static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    TPCP_ASSIGN_OR_RETURN(std::unique_ptr<DistChannel> channel,
                          DistAccept(listen_fd, dopts.accept_timeout_ms));
    JsonValue hello;
    TPCP_RETURN_IF_ERROR(channel->Recv(&hello));
    TPCP_ASSIGN_OR_RETURN(const std::string tag, GetString(hello, "t"));
    if (tag != "hello") {
      return Status::InvalidArgument("dist: expected hello, got '" + tag +
                                     "'");
    }
    TPCP_ASSIGN_OR_RETURN(const int64_t w, GetInt(hello, "worker"));
    if (w < 0 || w >= num_workers) {
      return Status::InvalidArgument("dist: worker id " + std::to_string(w) +
                                     " out of range");
    }
    if (channels[static_cast<size_t>(w)] != nullptr) {
      return Status::InvalidArgument("dist: duplicate worker id " +
                                     std::to_string(w));
    }
    channels[static_cast<size_t>(w)] = std::move(channel);
  }

  auto send = [&channels](int w, const JsonValue& msg) {
    return Annotate(w, channels[static_cast<size_t>(w)]->Send(msg));
  };
  auto recv = [&channels](int w, JsonValue* msg) {
    return Annotate(w, channels[static_cast<size_t>(w)]->Recv(msg));
  };

  JsonValue init = JsonValue::Object();
  init.Set("t", "init");
  init.Set("workers", static_cast<int64_t>(num_workers));
  init.Set("resume", options.resume_phase2);
  init.Set("grid", EncodeGrid(grid));
  init.Set("options", EncodeOptions(options));
  for (int w = 0; w < num_workers; ++w) {
    TPCP_RETURN_IF_ERROR(send(w, init));
  }

  // Readiness: every worker must have built the coordinator's exact plan
  // and options, and every worker's initial surrogate fit must agree
  // bitwise — they initialized from the same persisted state.
  int64_t init_fit_bits = 0;
  for (int w = 0; w < num_workers; ++w) {
    JsonValue ready;
    TPCP_RETURN_IF_ERROR(recv(w, &ready));
    TPCP_ASSIGN_OR_RETURN(const std::string tag, GetString(ready, "t"));
    if (tag != "ready") {
      return Status::Internal("dist worker " + std::to_string(w) +
                              ": expected ready, got '" + tag + "'");
    }
    TPCP_ASSIGN_OR_RETURN(const int64_t plan_fp, GetInt(ready, "plan_fp"));
    if (static_cast<uint64_t>(plan_fp) != plan.fingerprint()) {
      return Status::Internal("dist worker " + std::to_string(w) +
                              " built a different execution plan "
                              "(fingerprint mismatch)");
    }
    TPCP_ASSIGN_OR_RETURN(const int64_t opts_fp, GetInt(ready, "opts_fp"));
    if (static_cast<uint64_t>(opts_fp) != options.ResumeFingerprint()) {
      return Status::Internal("dist worker " + std::to_string(w) +
                              " decoded different math-shaping options "
                              "(fingerprint mismatch)");
    }
    TPCP_ASSIGN_OR_RETURN(const int64_t fit_bits, GetInt(ready, "fit"));
    if (w == 0) {
      init_fit_bits = fit_bits;
    } else if (fit_bits != init_fit_bits) {
      return Status::Internal(
          "dist: initial surrogate fit diverges across workers");
    }
  }

  double prev_fit = result->phase2.fit_trace.empty()
                        ? BitsToDouble(init_fit_bits)
                        : result->phase2.fit_trace.back();
  result->phase2.start_iteration = start_vi;
  result->phase2.virtual_iterations = start_vi;
  result->plan_fingerprint = plan.fingerprint();
  result->measured.assign(static_cast<size_t>(num_workers), WorkerTraffic{});
  result->predicted.assign(static_cast<size_t>(num_workers),
                           WorkerTraffic{});
  result->measured_persist_bytes.assign(static_cast<size_t>(num_workers), 0);
  result->predicted_persist_bytes.assign(static_cast<size_t>(num_workers),
                                         0);

  for (int vi = start_vi; vi < options.max_virtual_iterations; ++vi) {
    const int64_t vi_end = static_cast<int64_t>(vi + 1) * vi_len;
    const int64_t window_begin = pos;
    while (pos < vi_end) {
      // One plan wave (clipped to the virtual iteration), executed by all
      // owners concurrently — the steps commute exactly, so ownership
      // partitioning cannot change the math.
      const int64_t wave_end = std::min(plan.WaveEndAfter(pos), vi_end);
      JsonValue wave = JsonValue::Object();
      wave.Set("t", "wave");
      wave.Set("pos", pos);
      wave.Set("end", wave_end);
      for (int w = 0; w < num_workers; ++w) {
        TPCP_RETURN_IF_ERROR(send(w, wave));
      }
      // Collect the owners' metadata images in worker-id order — a
      // deterministic relay order, so every worker absorbs the same
      // sequence on every run.
      std::vector<RelayFrame> frames;
      for (int w = 0; w < num_workers; ++w) {
        for (;;) {
          JsonValue msg;
          TPCP_RETURN_IF_ERROR(recv(w, &msg));
          TPCP_ASSIGN_OR_RETURN(const std::string tag, GetString(msg, "t"));
          if (tag == "wave_done") break;
          if (tag != "xchg") {
            return Status::Internal("dist worker " + std::to_string(w) +
                                    ": expected xchg/wave_done, got '" +
                                    tag + "'");
          }
          RelayFrame frame;
          frame.owner = w;
          TPCP_RETURN_IF_ERROR(
              XchgFrameBytes(msg, &frame.bytes, &frame.last));
          frame.msg = std::move(msg);
          result->measured[static_cast<size_t>(w)].up_bytes += frame.bytes;
          if (frame.last) {
            ++result->measured[static_cast<size_t>(w)].up_messages;
          }
          frames.push_back(std::move(frame));
        }
      }
      for (RelayFrame& frame : frames) {
        frame.msg.Set("t", "absorb");
        for (int v = 0; v < num_workers; ++v) {
          if (v == frame.owner) continue;
          TPCP_RETURN_IF_ERROR(send(v, frame.msg));
          result->measured[static_cast<size_t>(v)].down_bytes += frame.bytes;
          if (frame.last) {
            ++result->measured[static_cast<size_t>(v)].down_messages;
          }
        }
      }
      // Commit barrier: no worker starts the next wave before every worker
      // absorbed this one's images.
      JsonValue commit = JsonValue::Object();
      commit.Set("t", "wave_commit");
      for (int w = 0; w < num_workers; ++w) {
        TPCP_RETURN_IF_ERROR(send(w, commit));
      }
      for (int w = 0; w < num_workers; ++w) {
        JsonValue ack;
        TPCP_RETURN_IF_ERROR(recv(w, &ack));
        TPCP_ASSIGN_OR_RETURN(const std::string tag, GetString(ack, "t"));
        if (tag != "wave_ack") {
          return Status::Internal("dist worker " + std::to_string(w) +
                                  ": expected wave_ack, got '" + tag + "'");
        }
      }
      for (int v = 0; v < num_workers; ++v) {
        result->predicted[static_cast<size_t>(v)] +=
            dplan.TrafficForRange(v, pos, wave_end);
      }
      pos = wave_end;
    }

    // Virtual-iteration boundary: every worker evaluates the surrogate fit
    // over its (identical) full state; bitwise disagreement means the
    // exchange protocol failed and must never be papered over.
    JsonValue vi_msg = JsonValue::Object();
    vi_msg.Set("t", "vi_end");
    for (int w = 0; w < num_workers; ++w) {
      TPCP_RETURN_IF_ERROR(send(w, vi_msg));
    }
    int64_t fit_bits = 0;
    for (int w = 0; w < num_workers; ++w) {
      JsonValue fit_msg;
      TPCP_RETURN_IF_ERROR(recv(w, &fit_msg));
      TPCP_ASSIGN_OR_RETURN(const std::string tag, GetString(fit_msg, "t"));
      if (tag != "fit") {
        return Status::Internal("dist worker " + std::to_string(w) +
                                ": expected fit, got '" + tag + "'");
      }
      TPCP_ASSIGN_OR_RETURN(const int64_t bits, GetInt(fit_msg, "fit"));
      if (w == 0) {
        fit_bits = bits;
      } else if (bits != fit_bits) {
        return Status::Internal(
            "dist: surrogate fit diverges across workers at virtual "
            "iteration " +
            std::to_string(vi + 1));
      }
    }
    const double fit = BitsToDouble(fit_bits);
    result->phase2.fit_trace.push_back(fit);
    result->phase2.virtual_iterations = vi + 1;

    // Persist boundary: collect every worker's dirty sub-factors, write
    // them to the base store in sorted unit order, then cut the
    // checkpoint. The base store advances atomically with respect to
    // worker crashes — a kill at any point leaves it exactly at the
    // previous checkpoint.
    JsonValue persist = JsonValue::Object();
    persist.Set("t", "persist");
    for (int w = 0; w < num_workers; ++w) {
      TPCP_RETURN_IF_ERROR(send(w, persist));
    }
    std::map<ModePartition, Matrix> staged;
    for (int w = 0; w < num_workers; ++w) {
      for (;;) {
        JsonValue msg;
        TPCP_RETURN_IF_ERROR(recv(w, &msg));
        TPCP_ASSIGN_OR_RETURN(const std::string tag, GetString(msg, "t"));
        if (tag == "persist_done") break;
        if (tag != "subfactor") {
          return Status::Internal("dist worker " + std::to_string(w) +
                                  ": expected subfactor/persist_done, got '" +
                                  tag + "'");
        }
        TPCP_ASSIGN_OR_RETURN(const int64_t mode, GetInt(msg, "mode"));
        TPCP_ASSIGN_OR_RETURN(const int64_t part, GetInt(msg, "part"));
        const ModePartition unit{static_cast<int>(mode), part};
        if (dplan.OwnerOf(unit) != w) {
          return Status::Internal("dist worker " + std::to_string(w) +
                                  " uploaded a sub-factor it does not own");
        }
        const JsonValue* a = msg.Find("a");
        if (a == nullptr) {
          return Status::InvalidArgument("subfactor frame: missing a");
        }
        TPCP_ASSIGN_OR_RETURN(const int64_t chunk_rows, GetInt(*a, "rc"));
        TPCP_ASSIGN_OR_RETURN(const int64_t cols, GetInt(*a, "c"));
        result->measured_persist_bytes[static_cast<size_t>(w)] +=
            static_cast<uint64_t>(chunk_rows * cols) * sizeof(double);
        TPCP_RETURN_IF_ERROR(DecodeMatrixRowsInto(*a, &staged[unit]));
      }
    }
    for (const auto& [unit, a] : staged) {
      TPCP_RETURN_IF_ERROR(factors->WriteSubFactor(unit.mode, unit.part, a));
    }
    for (int v = 0; v < num_workers; ++v) {
      result->predicted_persist_bytes[static_cast<size_t>(v)] +=
          dplan.PersistBytesForRange(v, window_begin, pos);
    }
    Phase2Checkpoint ckpt;
    ckpt.schedule = ScheduleTypeName(options.schedule);
    ckpt.iteration = result->phase2.virtual_iterations;
    ckpt.cursor = pos;
    ckpt.fit_trace = result->phase2.fit_trace;
    ckpt.options_fingerprint = options.ResumeFingerprint();
    ckpt.plan_fingerprint = plan.fingerprint();
    TPCP_RETURN_IF_ERROR(WriteManifest(factors->env(), factors->prefix(),
                                       FactorManifest(*factors,
                                                      std::move(ckpt))));

    const bool cycle_completed = pos >= schedule.cycle_length();
    if (cycle_completed && vi > 0 &&
        Phase2Converged(fit, prev_fit, options.fit_tolerance)) {
      prev_fit = fit;
      result->phase2.converged = true;
      break;
    }
    prev_fit = fit;
  }

  for (int w = 0; w < num_workers; ++w) {
    JsonValue finish = JsonValue::Object();
    finish.Set("t", "finish");
    TPCP_RETURN_IF_ERROR(send(w, finish));
    JsonValue bye;
    TPCP_RETURN_IF_ERROR(recv(w, &bye));
    TPCP_ASSIGN_OR_RETURN(const std::string tag, GetString(bye, "t"));
    if (tag != "bye") {
      return Status::Internal("dist worker " + std::to_string(w) +
                              ": expected bye, got '" + tag + "'");
    }
  }

  // The run completed: retire the checkpoint. The store now carries the
  // plain factors manifest — the same bytes a single-process run's store
  // holds.
  TPCP_RETURN_IF_ERROR(WriteManifest(factors->env(), factors->prefix(),
                                     FactorManifest(*factors, std::nullopt)));
  result->phase2.surrogate_fit = prev_fit;
  result->phase2.seconds = watch.ElapsedSeconds();
  return Status::OK();
}

}  // namespace tpcp
