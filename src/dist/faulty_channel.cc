#include "dist/faulty_channel.h"

#include <chrono>
#include <thread>

namespace tpcp {
namespace {

bool IsHeartbeat(const JsonValue& message) {
  const JsonValue* tag = message.Find("t");
  return tag != nullptr && tag->is_string() && tag->string_value() == "hb";
}

void SleepMs(int64_t ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

const ChaosEvent* FaultyChannel::EventFor(ChaosEvent::Dir dir,
                                          int64_t frame) const {
  for (const ChaosEvent& event : schedule_.events) {
    if (event.dir == dir && event.at_frame == frame) return &event;
  }
  return nullptr;
}

Status FaultyChannel::Send(const JsonValue& message) {
  // Heartbeats are wall-clock-paced; letting them tick the frame counter
  // would make the script fire at racy protocol moments.
  if (IsHeartbeat(message)) return SendRaw(message);
  const int64_t frame = sent_frames_++;
  const ChaosEvent* event = EventFor(ChaosEvent::Dir::kSend, frame);
  if (event == nullptr) return SendRaw(message);
  switch (event->op) {
    case ChaosEvent::Op::kDrop:
      // Swallowed: the peer waits for a frame that never comes and its
      // recv deadline attributes the silence to this worker.
      return Status::OK();
    case ChaosEvent::Op::kDelay:
      SleepMs(event->delay_ms);
      return SendRaw(message);
    case ChaosEvent::Op::kGarbage: {
      // A length prefix far over kMaxFrameBytes: the peer's FrameDecoder
      // latches a permanent decode error and must hang up on us.
      static const char garbage[8] = {'\xff', '\xff', '\xff', '\xff',
                                      '\xde', '\xad', '\xbe', '\xef'};
      return SendBytes(garbage, sizeof(garbage));
    }
    case ChaosEvent::Op::kDisconnect:
      Close();
      return Status::IOError("chaos: scripted disconnect on send");
  }
  return Status::Internal("chaos: unreachable");
}

Status FaultyChannel::Recv(JsonValue* message) {
  for (;;) {
    const ChaosEvent* event =
        EventFor(ChaosEvent::Dir::kRecv, recv_frames_);
    if (event != nullptr && event->op == ChaosEvent::Op::kDisconnect) {
      ++recv_frames_;
      Close();
      return Status::IOError("chaos: scripted disconnect on recv");
    }
    if (event != nullptr && event->op == ChaosEvent::Op::kDelay) {
      SleepMs(event->delay_ms);
    }
    TPCP_RETURN_IF_ERROR(RecvRaw(message));
    const int64_t frame = recv_frames_++;
    (void)frame;
    if (event != nullptr && event->op == ChaosEvent::Op::kDrop) {
      continue;  // discard this frame, deliver the next instead
    }
    if (event != nullptr && event->op == ChaosEvent::Op::kGarbage) {
      return Status::IOError("chaos: garbage on recv");
    }
    return Status::OK();
  }
}

}  // namespace tpcp
