// Distributed Phase-2 worker (the follower side of dist/coordinator.h).
//
// A worker owns the data units the weighted DistributedPlan ownership map
// assigns to worker_id (heaviest units first onto the least-loaded
// worker; schedule/planner.h) and executes exactly their plan positions,
// serially in plan order, through the same RefinementState / BufferPool
// machinery as the single-process engine. Everything else it needs — the
// other owners' metadata refreshes (G, slab M) — arrives from the
// coordinator after each wave; within a conflict-free wave those images
// touch disjoint metadata no owned step reads, so executing owned steps
// against pre-wave metadata and absorbing the rest afterwards is
// bit-identical to the engine executing the whole wave.
//
// Overlap pipeline (init's "overlap" flag): each wave's owned steps run
// on a compute thread while the protocol thread keeps receiving, so the
// previous wave's *deferred* absorbs — the ones
// DistributedPlan::CanDeferPast proves no owned step reads before the
// next commit — install concurrently with compute. The commit gate then
// demands the deferred set of the previous wave plus every non-deferrable
// live image of this one, which keeps the metadata state at every commit
// identical to barrier execution (and deferral never crosses a
// virtual-iteration boundary, so fits and checkpoints match bit-for-bit).
//
// The worker's buffer pool runs against a private in-memory overlay of the
// shared factor store (storage/overlay_env.h): evicted dirty sub-factors
// land in the overlay, never in the base store. The base store is written
// by the coordinator alone, at persist boundaries, after collecting every
// worker's dirty sub-factors — so a worker killed at any instant leaves
// the persisted factors exactly at the last checkpoint.
//
// Protocol (framed JSON over one socket, "t"-tagged; dist/exchange.h):
//
//   worker -> coord   {"t":"hello","worker":W}
//   coord -> worker   {"t":"init","workers":N,"resume":B,"hb_ms":H,
//                      "overlap":B,"grid":…,"options":…}
//   worker -> coord   {"t":"hb"}   (every H ms from init on; carries no
//                     protocol state — the coordinator skips it — and only
//                     keeps the channel's quiet-period deadline from
//                     firing while the worker computes)
//   worker -> coord   {"t":"ready","plan_fp":i64,"opts_fp":i64,
//                      "own_fp":i64,"fit":bits}
//   coord -> worker   {"t":"wave","pos":P,"end":E}
//   worker -> coord   {"t":"xchg","pos":i,"mode":m,"part":p,
//                      "g":mat?,"m":[[flat,mat],…],"last":B}   (per owned
//                      step, chunked under the frame ceiling)
//   worker -> coord   {"t":"wave_done"}
//   coord -> worker   {"t":"absorb",… same fields as xchg …}   (relayed;
//                     under overlap, deferred images of wave w arrive
//                     during wave w+1 and are owed at its commit)
//   coord -> worker   {"t":"wave_commit"}
//   worker -> coord   {"t":"wave_ack"}
//   coord -> worker   {"t":"vi_end"}
//   worker -> coord   {"t":"fit","fit":bits}
//   coord -> worker   {"t":"persist"}
//   worker -> coord   {"t":"subfactor","mode":m,"part":p,"a":rows}… then
//                     {"t":"persist_done"}   (dirty owned units, sorted)
//   coord -> worker   {"t":"finish"}
//   worker -> coord   {"t":"bye"}

#ifndef TPCP_DIST_WORKER_H_
#define TPCP_DIST_WORKER_H_

#include <cstdint>
#include <string>

#include "dist/faulty_channel.h"
#include "storage/env.h"

namespace tpcp {

/// Test hooks for crash and chaos injection.
struct DistWorkerHooks {
  /// Abort the process's connection (close the socket, return Internal)
  /// just before executing the owned step at this global plan position —
  /// a worker crash mid-wave. -1 = never.
  int64_t crash_at_step = -1;
  /// When non-empty, the worker's channel is wrapped in a FaultyChannel
  /// replaying this schedule (scripted drop/delay/garbage/disconnect,
  /// keyed by per-direction frame counters; heartbeats are exempt).
  ChaosSchedule chaos;
};

/// Runs one worker to completion: connects to the coordinator on
/// 127.0.0.1:`port`, introduces itself as `worker_id`, and serves the
/// protocol until "finish" (or error). `base_env` is the shared store
/// environment holding the factor store at `factor_prefix`; it is only
/// ever read (worker-side writes land in a private overlay).
Status ServeDistWorker(Env* base_env, const std::string& factor_prefix,
                       int port, int worker_id,
                       const DistWorkerHooks& hooks = {});

}  // namespace tpcp

#endif  // TPCP_DIST_WORKER_H_
