#include "dist/exchange.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "core/names.h"
#include "linalg/kernels.h"

namespace tpcp {
namespace {

constexpr char kB64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::string Base64Encode(const char* data, size_t size) {
  std::string out;
  out.reserve(((size + 2) / 3) * 4);
  size_t i = 0;
  for (; i + 3 <= size; i += 3) {
    const uint32_t v = (static_cast<uint8_t>(data[i]) << 16) |
                       (static_cast<uint8_t>(data[i + 1]) << 8) |
                       static_cast<uint8_t>(data[i + 2]);
    out.push_back(kB64Alphabet[(v >> 18) & 0x3f]);
    out.push_back(kB64Alphabet[(v >> 12) & 0x3f]);
    out.push_back(kB64Alphabet[(v >> 6) & 0x3f]);
    out.push_back(kB64Alphabet[v & 0x3f]);
  }
  if (i < size) {
    uint32_t v = static_cast<uint8_t>(data[i]) << 16;
    const bool two = i + 1 < size;
    if (two) v |= static_cast<uint8_t>(data[i + 1]) << 8;
    out.push_back(kB64Alphabet[(v >> 18) & 0x3f]);
    out.push_back(kB64Alphabet[(v >> 12) & 0x3f]);
    out.push_back(two ? kB64Alphabet[(v >> 6) & 0x3f] : '=');
    out.push_back('=');
  }
  return out;
}

Result<std::string> Base64Decode(const std::string& text) {
  static const auto value_of = [] {
    std::array<int8_t, 256> table;
    table.fill(-1);
    for (int i = 0; i < 64; ++i) {
      table[static_cast<uint8_t>(kB64Alphabet[i])] = static_cast<int8_t>(i);
    }
    return table;
  }();
  if (text.size() % 4 != 0) {
    return Status::InvalidArgument("base64: length not a multiple of 4");
  }
  std::string out;
  out.reserve((text.size() / 4) * 3);
  for (size_t i = 0; i < text.size(); i += 4) {
    int vals[4];
    int pad = 0;
    for (int j = 0; j < 4; ++j) {
      const char c = text[i + j];
      if (c == '=') {
        if (i + 4 != text.size() || j < 2) {
          return Status::InvalidArgument("base64: misplaced padding");
        }
        vals[j] = 0;
        ++pad;
        continue;
      }
      if (pad > 0) {
        return Status::InvalidArgument("base64: data after padding");
      }
      const int8_t v = value_of[static_cast<uint8_t>(c)];
      if (v < 0) return Status::InvalidArgument("base64: bad character");
      vals[j] = v;
    }
    const uint32_t v = (vals[0] << 18) | (vals[1] << 12) | (vals[2] << 6) |
                       vals[3];
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    if (pad < 2) out.push_back(static_cast<char>((v >> 8) & 0xff));
    if (pad < 1) out.push_back(static_cast<char>(v & 0xff));
  }
  return out;
}

/// Waits for `events` on `fd` for up to `timeout_ms` (< 0 blocks forever).
/// OK when ready; IOError on poll failure or deadline expiry.
Status PollFor(int fd, short events, int timeout_ms, const char* what) {
  for (;;) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("dist poll: ") +
                             std::strerror(errno));
    }
    if (ready == 0) {
      return Status::IOError(std::string("dist ") + what + " timed out");
    }
    return Status::OK();
  }
}

Status WriteAllNoSig(int fd, const char* data, size_t size, int timeout_ms) {
  size_t sent = 0;
  while (sent < size) {
    if (timeout_ms >= 0) {
      TPCP_RETURN_IF_ERROR(PollFor(fd, POLLOUT, timeout_ms, "send"));
    }
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("dist send: ") +
                             std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

int64_t DoubleBits(double value) {
  int64_t bits;
  static_assert(sizeof(bits) == sizeof(value), "double is not 64-bit");
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double BitsToDouble(int64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

JsonValue EncodeMatrix(const Matrix& m) {
  JsonValue v = JsonValue::Object();
  v.Set("r", m.rows());
  v.Set("c", m.cols());
  v.Set("d", Base64Encode(reinterpret_cast<const char*>(m.data()),
                          static_cast<size_t>(m.size()) * sizeof(double)));
  return v;
}

Result<Matrix> DecodeMatrix(const JsonValue& v) {
  TPCP_ASSIGN_OR_RETURN(const int64_t rows, GetInt(v, "r"));
  TPCP_ASSIGN_OR_RETURN(const int64_t cols, GetInt(v, "c"));
  TPCP_ASSIGN_OR_RETURN(const std::string text, GetString(v, "d"));
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("matrix: negative shape");
  }
  TPCP_ASSIGN_OR_RETURN(const std::string bytes, Base64Decode(text));
  if (bytes.size() !=
      static_cast<size_t>(rows) * static_cast<size_t>(cols) *
          sizeof(double)) {
    return Status::InvalidArgument("matrix: payload does not match shape");
  }
  Matrix m(rows, cols);
  std::memcpy(m.data(), bytes.data(), bytes.size());
  return m;
}

JsonValue EncodeMatrixRows(const Matrix& m, int64_t row0, int64_t row_count) {
  JsonValue v = JsonValue::Object();
  v.Set("r", m.rows());
  v.Set("c", m.cols());
  v.Set("r0", row0);
  v.Set("rc", row_count);
  v.Set("d",
        Base64Encode(reinterpret_cast<const char*>(m.data() +
                                                   row0 * m.cols()),
                     static_cast<size_t>(row_count) *
                         static_cast<size_t>(m.cols()) * sizeof(double)));
  return v;
}

Status DecodeMatrixRowsInto(const JsonValue& v, Matrix* out) {
  TPCP_ASSIGN_OR_RETURN(const int64_t rows, GetInt(v, "r"));
  TPCP_ASSIGN_OR_RETURN(const int64_t cols, GetInt(v, "c"));
  TPCP_ASSIGN_OR_RETURN(const int64_t row0, GetInt(v, "r0"));
  TPCP_ASSIGN_OR_RETURN(const int64_t row_count, GetInt(v, "rc"));
  TPCP_ASSIGN_OR_RETURN(const std::string text, GetString(v, "d"));
  if (rows <= 0 || cols <= 0 || row0 < 0 || row_count < 0 ||
      row0 + row_count > rows) {
    return Status::InvalidArgument("matrix chunk: bad slice");
  }
  if (out->rows() != rows || out->cols() != cols) {
    *out = Matrix(rows, cols);
  }
  TPCP_ASSIGN_OR_RETURN(const std::string bytes, Base64Decode(text));
  if (bytes.size() != static_cast<size_t>(row_count) *
                          static_cast<size_t>(cols) * sizeof(double)) {
    return Status::InvalidArgument("matrix chunk: payload mismatch");
  }
  std::memcpy(out->data() + row0 * cols, bytes.data(), bytes.size());
  return Status::OK();
}

JsonValue EncodeGrid(const GridPartition& grid) {
  JsonValue dims = JsonValue::Array();
  for (int mode = 0; mode < grid.num_modes(); ++mode) {
    dims.Append(grid.tensor_shape().dim(mode));
  }
  JsonValue parts = JsonValue::Array();
  for (const int64_t k : grid.parts()) parts.Append(k);
  JsonValue v = JsonValue::Object();
  v.Set("dims", std::move(dims));
  v.Set("parts", std::move(parts));
  return v;
}

Result<GridPartition> DecodeGrid(const JsonValue& v) {
  const JsonValue* dims = v.Find("dims");
  const JsonValue* parts = v.Find("parts");
  if (dims == nullptr || !dims->is_array() || parts == nullptr ||
      !parts->is_array()) {
    return Status::InvalidArgument("grid: missing dims/parts");
  }
  std::vector<int64_t> dim_values;
  for (const JsonValue& d : dims->array_items()) {
    if (!d.is_int()) return Status::InvalidArgument("grid: bad dim");
    dim_values.push_back(d.int_value());
  }
  std::vector<int64_t> part_values;
  for (const JsonValue& p : parts->array_items()) {
    if (!p.is_int()) return Status::InvalidArgument("grid: bad part");
    part_values.push_back(p.int_value());
  }
  return GridPartition::Create(Shape(dim_values), std::move(part_values));
}

JsonValue EncodeOptions(const TwoPhaseCpOptions& options) {
  JsonValue v = JsonValue::Object();
  v.Set("rank", options.rank);
  v.Set("phase1_max_iterations", options.phase1_max_iterations);
  v.Set("phase1_fit_tolerance", DoubleBits(options.phase1_fit_tolerance));
  v.Set("phase1_ridge", DoubleBits(options.phase1_ridge));
  v.Set("init", InitMethodName(options.init));
  v.Set("seed", options.seed);
  v.Set("num_threads", options.num_threads);
  v.Set("schedule", ScheduleTypeName(options.schedule));
  v.Set("policy", PolicyTypeName(options.policy));
  v.Set("buffer_fraction", DoubleBits(options.buffer_fraction));
  v.Set("buffer_bytes", options.buffer_bytes);
  v.Set("max_virtual_iterations", options.max_virtual_iterations);
  v.Set("fit_tolerance", DoubleBits(options.fit_tolerance));
  v.Set("refinement_ridge", DoubleBits(options.refinement_ridge));
  v.Set("resume_phase2", options.resume_phase2);
  v.Set("prefetch_depth", options.prefetch_depth);
  v.Set("io_threads", options.io_threads);
  v.Set("compute_threads", options.compute_threads);
  v.Set("plan_reorder", options.plan_reorder);
  v.Set("plan_reorder_auto", options.plan_reorder_auto);
  v.Set("plan_reorder_window", options.plan_reorder_window);
  v.Set("shard_slab_blocks", options.shard_slab_blocks);
  v.Set("kernel_fma", options.kernel_fma);
  v.Set("policy_victim_hints", options.policy_victim_hints);
  return v;
}

Result<TwoPhaseCpOptions> DecodeOptions(const JsonValue& v) {
  TwoPhaseCpOptions o;
  TPCP_ASSIGN_OR_RETURN(o.rank, GetInt(v, "rank"));
  TPCP_ASSIGN_OR_RETURN(const int64_t p1_iters,
                        GetInt(v, "phase1_max_iterations"));
  o.phase1_max_iterations = static_cast<int>(p1_iters);
  TPCP_ASSIGN_OR_RETURN(const int64_t p1_tol,
                        GetInt(v, "phase1_fit_tolerance"));
  o.phase1_fit_tolerance = BitsToDouble(p1_tol);
  TPCP_ASSIGN_OR_RETURN(const int64_t p1_ridge, GetInt(v, "phase1_ridge"));
  o.phase1_ridge = BitsToDouble(p1_ridge);
  TPCP_ASSIGN_OR_RETURN(const std::string init, GetString(v, "init"));
  TPCP_ASSIGN_OR_RETURN(o.init, InitMethodFromName(init));
  TPCP_ASSIGN_OR_RETURN(const int64_t seed, GetInt(v, "seed"));
  o.seed = static_cast<uint64_t>(seed);
  TPCP_ASSIGN_OR_RETURN(const int64_t threads, GetInt(v, "num_threads"));
  o.num_threads = static_cast<int>(threads);
  TPCP_ASSIGN_OR_RETURN(const std::string schedule,
                        GetString(v, "schedule"));
  TPCP_ASSIGN_OR_RETURN(o.schedule, ScheduleTypeFromName(schedule));
  TPCP_ASSIGN_OR_RETURN(const std::string policy, GetString(v, "policy"));
  TPCP_ASSIGN_OR_RETURN(o.policy, PolicyTypeFromName(policy));
  TPCP_ASSIGN_OR_RETURN(const int64_t frac, GetInt(v, "buffer_fraction"));
  o.buffer_fraction = BitsToDouble(frac);
  TPCP_ASSIGN_OR_RETURN(const int64_t bytes, GetInt(v, "buffer_bytes"));
  o.buffer_bytes = static_cast<uint64_t>(bytes);
  TPCP_ASSIGN_OR_RETURN(const int64_t max_vi,
                        GetInt(v, "max_virtual_iterations"));
  o.max_virtual_iterations = static_cast<int>(max_vi);
  TPCP_ASSIGN_OR_RETURN(const int64_t fit_tol, GetInt(v, "fit_tolerance"));
  o.fit_tolerance = BitsToDouble(fit_tol);
  TPCP_ASSIGN_OR_RETURN(const int64_t ridge,
                        GetInt(v, "refinement_ridge"));
  o.refinement_ridge = BitsToDouble(ridge);
  TPCP_ASSIGN_OR_RETURN(o.resume_phase2, GetBoolOr(v, "resume_phase2", false));
  TPCP_ASSIGN_OR_RETURN(const int64_t depth, GetInt(v, "prefetch_depth"));
  o.prefetch_depth = static_cast<int>(depth);
  TPCP_ASSIGN_OR_RETURN(const int64_t io, GetInt(v, "io_threads"));
  o.io_threads = static_cast<int>(io);
  TPCP_ASSIGN_OR_RETURN(const int64_t compute,
                        GetInt(v, "compute_threads"));
  o.compute_threads = static_cast<int>(compute);
  TPCP_ASSIGN_OR_RETURN(o.plan_reorder, GetBoolOr(v, "plan_reorder", false));
  TPCP_ASSIGN_OR_RETURN(o.plan_reorder_auto,
                        GetBoolOr(v, "plan_reorder_auto", true));
  TPCP_ASSIGN_OR_RETURN(o.plan_reorder_window,
                        GetInt(v, "plan_reorder_window"));
  TPCP_ASSIGN_OR_RETURN(o.shard_slab_blocks,
                        GetInt(v, "shard_slab_blocks"));
  TPCP_ASSIGN_OR_RETURN(o.kernel_fma, GetBoolOr(v, "kernel_fma", false));
  TPCP_ASSIGN_OR_RETURN(o.policy_victim_hints,
                        GetBoolOr(v, "policy_victim_hints", false));
  return o;
}

Status DistChannel::Send(const JsonValue& message) {
  return SendRaw(message);
}

Status DistChannel::Recv(JsonValue* message) { return RecvRaw(message); }

Status DistChannel::SendRaw(const JsonValue& message) {
  TPCP_ASSIGN_OR_RETURN(const std::string frame,
                        EncodeFrame(message.Serialize()));
  return SendBytes(frame.data(), frame.size());
}

Status DistChannel::SendBytes(const char* data, size_t size) {
  // Serialize senders: the worker's heartbeat thread shares the channel
  // with its protocol loop, and interleaved partial frames would corrupt
  // the stream.
  std::lock_guard<std::mutex> lock(send_mu_);
  if (fd_ < 0) return Status::FailedPrecondition("dist channel closed");
  return WriteAllNoSig(fd_, data, size, io_timeout_ms_);
}

Status DistChannel::RecvRaw(JsonValue* message) {
  if (fd_ < 0) return Status::FailedPrecondition("dist channel closed");
  std::string payload;
  while (!decoder_.Next(&payload)) {
    TPCP_RETURN_IF_ERROR(decoder_.error());
    if (io_timeout_ms_ >= 0) {
      // Quiet-period deadline: each arriving byte restarts the clock, so a
      // slow-but-alive peer is fine and a silent one fails in bounded time.
      TPCP_RETURN_IF_ERROR(PollFor(fd_, POLLIN, io_timeout_ms_, "recv"));
    }
    char buf[16384];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("dist recv: ") +
                             std::strerror(errno));
    }
    if (n == 0) return Status::IOError("dist peer closed connection");
    TPCP_RETURN_IF_ERROR(decoder_.Feed(buf, static_cast<size_t>(n)));
  }
  TPCP_ASSIGN_OR_RETURN(*message, JsonValue::Parse(payload));
  return Status::OK();
}

int DistChannel::ReleaseFd() {
  std::lock_guard<std::mutex> lock(send_mu_);
  return fd_.exchange(-1);
}

void DistChannel::CloseFd() {
  std::lock_guard<std::mutex> lock(send_mu_);
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    // A close() alone does not interrupt a recv() blocked on another
    // thread (the overlap pipeline's compute thread closes the channel to
    // abort the protocol loop); shutdown() wakes it with EOF first.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

Result<int> DistListen(int* port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("dist socket: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(*port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Status::IOError(std::string("dist bind: ") +
                                     std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) != 0) {
    const Status s = Status::IOError(std::string("dist listen: ") +
                                     std::strerror(errno));
    ::close(fd);
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status s = Status::IOError(std::string("dist getsockname: ") +
                                     std::strerror(errno));
    ::close(fd);
    return s;
  }
  *port = ntohs(bound.sin_port);
  return fd;
}

Result<std::unique_ptr<DistChannel>> DistAccept(int listen_fd,
                                                int timeout_ms) {
  for (;;) {
    if (timeout_ms >= 0) {
      pollfd pfd{};
      pfd.fd = listen_fd;
      pfd.events = POLLIN;
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("dist poll: ") +
                               std::strerror(errno));
      }
      if (ready == 0) return Status::IOError("dist accept timed out");
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("dist accept: ") +
                             std::strerror(errno));
    }
    return std::make_unique<DistChannel>(fd);
  }
}

namespace {

Result<int> DistConnectOnce(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("dist socket: ") +
                           std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Status::IOError(std::string("dist connect: ") +
                                     std::strerror(errno));
    ::close(fd);
    return s;
  }
  return fd;
}

}  // namespace

Result<std::unique_ptr<DistChannel>> DistConnect(int port,
                                                 const RetryPolicy& retry) {
  int fd = -1;
  TPCP_RETURN_IF_ERROR(RetryWithBackoff(
      retry, "dist connect to port " + std::to_string(port), [&] {
        Result<int> attempt = DistConnectOnce(port);
        if (!attempt.ok()) return attempt.status();
        fd = *attempt;
        return Status::OK();
      }));
  return std::make_unique<DistChannel>(fd);
}

}  // namespace tpcp
