// Coordinator-side worker supervision policy: given a stream of
// worker-attributed faults, decide — respawn the fleet at the same size,
// degrade it (shed one worker and re-plan ownership), finish
// single-process, or give up.
//
// The mechanism lives in dist/coordinator.cc (it owns the channels and the
// checkpoint state); this class owns only the *policy* — respawn budgets,
// the degrade ladder, and the operator-visible log lines — so it is unit
// testable without sockets.
//
// Recovery model: state is committed only at virtual-iteration checkpoints
// and workers always initialize from the persisted store, so the recovery
// unit is "tear the fleet down, restart from the last checkpoint". Any
// fleet (same size, smaller, or the in-process engine) replays the
// remaining plan positions bit-identically; only the wire ledger is
// re-priced.

#ifndef TPCP_DIST_SUPERVISOR_H_
#define TPCP_DIST_SUPERVISOR_H_

#include <functional>
#include <string>

#include "util/status.h"

namespace tpcp {

/// What the coordinator may fall back to once the respawn budget is spent.
enum class DegradeMode {
  kOff,     // never degrade: exhausting the budget fails the run
  kShrink,  // shed one worker at a time, re-planning ownership; a
            // single-worker fleet that still faults finishes in-process
  kSingle,  // skip shrinking: finish in-process immediately
};

const char* DegradeModeName(DegradeMode mode);
Result<DegradeMode> DegradeModeFromName(const std::string& name);

/// The supervisor's verdict after one recoverable worker fault.
struct RecoveryDecision {
  enum class Action {
    kRespawn,        // restart the fleet at the same size
    kShrink,         // restart with one worker fewer
    kSingleProcess,  // finish via the in-process Phase2Engine
    kFail,           // surface the fault as the run's error
  };
  Action action = Action::kFail;
  /// Fleet size the next attempt runs with (meaningful for kRespawn /
  /// kShrink).
  int fleet_size = 0;
};

/// Tracks the fleet across fault events. Not thread-safe; the coordinator
/// consults it from its single protocol thread.
class WorkerSupervisor {
 public:
  /// `log` (optional) receives one grep-able line per recovery event.
  WorkerSupervisor(int fleet_size, int max_respawns, DegradeMode mode,
                   std::function<void(const std::string&)> log = nullptr);

  /// Records a worker-attributed recoverable fault (`worker` < 0 when the
  /// fault cannot be pinned on one id, e.g. a fleet-formation timeout) and
  /// returns what to do next. The returned fleet size is already applied
  /// to fleet_size().
  RecoveryDecision OnWorkerFault(int worker, const Status& cause);

  /// Emits an operator line through the log hook (no-op when unset).
  void Log(const std::string& line) const;

  int fleet_size() const { return fleet_size_; }
  int respawns() const { return respawns_; }
  int degrades() const { return degrades_; }

 private:
  int fleet_size_;
  int max_respawns_;
  DegradeMode mode_;
  std::function<void(const std::string&)> log_;
  int respawns_ = 0;
  int degrades_ = 0;
};

}  // namespace tpcp

#endif  // TPCP_DIST_SUPERVISOR_H_
