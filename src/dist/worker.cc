#include "dist/worker.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "buffer/buffer_pool.h"
#include "core/phase2_engine.h"
#include "core/refinement_state.h"
#include "dist/exchange.h"
#include "schedule/planner.h"
#include "storage/overlay_env.h"
#include "storage/retry_env.h"
#include "util/logging.h"
#include "util/retry.h"

namespace tpcp {
namespace {

/// Sends {"t":"hb"} every `interval_ms` until stopped (or until a send
/// fails — a vanished coordinator is the protocol thread's error to
/// surface). Shares the channel with the protocol thread; DistChannel
/// serializes frame writes internally.
class HeartbeatThread {
 public:
  HeartbeatThread(DistChannel* channel, int interval_ms)
      : channel_(channel), interval_ms_(interval_ms) {
    thread_ = std::thread([this] { Loop(); });
  }
  ~HeartbeatThread() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void Loop() {
    JsonValue hb = JsonValue::Object();
    hb.Set("t", "hb");
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                       [this] { return stop_; })) {
        return;
      }
      lock.unlock();
      const Status s = channel_->Send(hb);
      lock.lock();
      if (!s.ok()) return;
    }
  }

  DistChannel* channel_;
  int interval_ms_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Sends one owned step's metadata image as chunked "xchg" frames: the
/// Gram rides in the first chunk, slab-M entries fill chunks up to the
/// logical byte budget, and the final chunk carries "last":true.
Status SendExchange(DistChannel* channel, int64_t pos,
                    const ModePartition& unit,
                    const RefinementState::ExchangeImage& image) {
  const uint64_t entry_bytes =
      static_cast<uint64_t>(image.gram.size()) * sizeof(double);
  const size_t entries_per_chunk = static_cast<size_t>(
      std::max<uint64_t>(1, kDistChunkBytes / std::max<uint64_t>(
                                                  1, entry_bytes)));
  size_t next = 0;
  bool first = true;
  do {
    JsonValue msg = JsonValue::Object();
    msg.Set("t", "xchg");
    msg.Set("pos", pos);
    msg.Set("mode", unit.mode);
    msg.Set("part", unit.part);
    if (first) msg.Set("g", EncodeMatrix(image.gram));
    JsonValue entries = JsonValue::Array();
    const size_t stop =
        std::min(image.slab_m.size(), next + entries_per_chunk);
    for (; next < stop; ++next) {
      JsonValue entry = JsonValue::Array();
      entry.Append(image.slab_m[next].first);
      entry.Append(EncodeMatrix(image.slab_m[next].second));
      entries.Append(std::move(entry));
    }
    msg.Set("m", std::move(entries));
    msg.Set("last", next == image.slab_m.size());
    TPCP_RETURN_IF_ERROR(channel->Send(msg));
    first = false;
  } while (next < image.slab_m.size());
  return Status::OK();
}

/// Accumulates chunked "absorb" frames until "last", then installs the
/// complete image.
class AbsorbBuffer {
 public:
  /// `completed` collects the plan positions whose images finished
  /// installing — the worker's absorb-completeness gate reads it at the
  /// wave commit barrier. `state_mu` (overlap pipeline only, may be null)
  /// serializes the install against a concurrently computing wave; frame
  /// decode stays outside the lock, so absorbs and compute overlap on the
  /// expensive part.
  Status Add(RefinementState* state, const JsonValue& msg,
             std::set<int64_t>* completed, std::mutex* state_mu = nullptr) {
    TPCP_ASSIGN_OR_RETURN(const int64_t mode, GetInt(msg, "mode"));
    TPCP_ASSIGN_OR_RETURN(const int64_t part, GetInt(msg, "part"));
    TPCP_ASSIGN_OR_RETURN(const int64_t pos, GetInt(msg, "pos"));
    TPCP_ASSIGN_OR_RETURN(const bool last, GetBoolOr(msg, "last", true));
    RefinementState::ExchangeImage& image = pending_[pos];
    if (const JsonValue* g = msg.Find("g")) {
      TPCP_ASSIGN_OR_RETURN(image.gram, DecodeMatrix(*g));
    }
    const JsonValue* entries = msg.Find("m");
    if (entries == nullptr || !entries->is_array()) {
      return Status::InvalidArgument("absorb: missing m");
    }
    for (const JsonValue& entry : entries->array_items()) {
      if (!entry.is_array() || entry.array_items().size() != 2) {
        return Status::InvalidArgument("absorb: bad m entry");
      }
      if (!entry.array_items()[0].is_int()) {
        return Status::InvalidArgument("absorb: bad m entry key");
      }
      TPCP_ASSIGN_OR_RETURN(Matrix m,
                            DecodeMatrix(entry.array_items()[1]));
      image.slab_m.emplace_back(entry.array_items()[0].int_value(),
                                std::move(m));
    }
    if (!last) return Status::OK();
    const ModePartition unit{static_cast<int>(mode), part};
    Status s;
    {
      std::unique_lock<std::mutex> lock;
      if (state_mu != nullptr) lock = std::unique_lock<std::mutex>(*state_mu);
      s = state->AbsorbExchange(unit, image);
    }
    pending_.erase(pos);
    if (s.ok()) completed->insert(pos);
    return s;
  }

 private:
  std::map<int64_t, RefinementState::ExchangeImage> pending_;
};

/// Sends one dirty sub-factor as row-sliced "subfactor" frames.
Status SendSubFactor(DistChannel* channel, const ModePartition& unit,
                     const Matrix& a) {
  const int64_t rows_per_chunk = std::max<int64_t>(
      1, static_cast<int64_t>(kDistChunkBytes /
                              std::max<int64_t>(
                                  1, a.cols() *
                                         static_cast<int64_t>(
                                             sizeof(double)))));
  for (int64_t row0 = 0; row0 < a.rows(); row0 += rows_per_chunk) {
    const int64_t count = std::min(rows_per_chunk, a.rows() - row0);
    JsonValue msg = JsonValue::Object();
    msg.Set("t", "subfactor");
    msg.Set("mode", unit.mode);
    msg.Set("part", unit.part);
    msg.Set("a", EncodeMatrixRows(a, row0, count));
    TPCP_RETURN_IF_ERROR(channel->Send(msg));
  }
  return Status::OK();
}

}  // namespace

Status ServeDistWorker(Env* base_env, const std::string& factor_prefix,
                       int port, int worker_id,
                       const DistWorkerHooks& hooks) {
  TPCP_ASSIGN_OR_RETURN(std::unique_ptr<DistChannel> channel,
                        DistConnect(port));
  if (!hooks.chaos.empty()) {
    // Chaos harness: replay the scripted fault schedule on this channel.
    channel = std::make_unique<FaultyChannel>(channel->ReleaseFd(),
                                              hooks.chaos);
  }
  JsonValue hello = JsonValue::Object();
  hello.Set("t", "hello");
  hello.Set("worker", worker_id);
  TPCP_RETURN_IF_ERROR(channel->Send(hello));

  JsonValue init;
  TPCP_RETURN_IF_ERROR(channel->Recv(&init));
  TPCP_ASSIGN_OR_RETURN(const std::string init_tag, GetString(init, "t"));
  if (init_tag != "init") {
    return Status::InvalidArgument("dist worker: expected init, got " +
                                   init_tag);
  }
  TPCP_ASSIGN_OR_RETURN(const int64_t num_workers,
                        GetInt(init, "workers"));
  if (worker_id < 0 || worker_id >= num_workers) {
    return Status::InvalidArgument("dist worker: id out of range");
  }
  const JsonValue* grid_json = init.Find("grid");
  const JsonValue* options_json = init.Find("options");
  if (grid_json == nullptr || options_json == nullptr) {
    return Status::InvalidArgument("dist worker: init missing grid/options");
  }
  TPCP_ASSIGN_OR_RETURN(const GridPartition grid, DecodeGrid(*grid_json));
  TPCP_ASSIGN_OR_RETURN(const TwoPhaseCpOptions options,
                        DecodeOptions(*options_json));
  TPCP_ASSIGN_OR_RETURN(const int64_t hb_ms, GetIntOr(init, "hb_ms", 0));
  // Overlap is an execution-shape knob (absorb-while-compute), never a
  // math-shaping one, so it rides alongside EncodeOptions instead of
  // inside it and stays out of ResumeFingerprint.
  TPCP_ASSIGN_OR_RETURN(const bool overlap,
                        GetBoolOr(init, "overlap", false));

  // From init on, heartbeat so the coordinator's quiet-period deadline
  // never fires while this worker computes; mirror a (generous) deadline
  // on our own channel so a vanished coordinator cannot wedge the worker.
  // The worker gets no heartbeats back, so its deadline must cover the
  // coordinator servicing every *other* worker's waves; 60 intervals is
  // deliberately much looser than the coordinator's 10.
  std::unique_ptr<HeartbeatThread> heartbeat;
  if (hb_ms > 0) {
    channel->set_io_timeout_ms(static_cast<int>(60 * hb_ms));
    heartbeat = std::make_unique<HeartbeatThread>(channel.get(),
                                                  static_cast<int>(hb_ms));
  }

  // All worker-side writes (pool evictions of dirty sub-factors) stay in
  // the overlay; the base store is the coordinator's to write. Reads of
  // the shared base store retry transient faults (storage/retry_env.h);
  // the in-memory overlay itself never faults.
  RetryEnv retry_base(base_env, RetryPolicy());
  std::unique_ptr<Env> overlay = NewOverlayEnv(&retry_base);
  BlockFactorStore store(overlay.get(), factor_prefix, grid, options.rank);

  std::unique_ptr<ThreadPool> compute_pool;
  if (options.compute_threads > 1) {
    compute_pool = std::make_unique<ThreadPool>(options.compute_threads);
  }
  RefinementState state(&store, options.refinement_ridge,
                        compute_pool.get(),
                        options.kernel_fma ? KernelArith::kFma
                                           : KernelArith::kExact);
  // Always "resume": fresh runs were seeded by the coordinator before
  // init, so the persisted sub-factors are the run's true current state.
  TPCP_RETURN_IF_ERROR(state.Initialize(/*resume=*/true));

  const UpdateSchedule source_schedule =
      UpdateSchedule::Create(options.schedule, grid);
  const PlannerOptions planner_options =
      Phase2PlannerOptions(options, grid);
  const ExecutionPlan plan =
      Planner::Build(source_schedule, planner_options);
  const UpdateSchedule& schedule = plan.schedule();
  const DistributedPlan dplan(&plan, options.rank,
                              static_cast<int>(num_workers));

  UnitCatalog catalog(grid, options.rank);
  BufferPool pool(planner_options.buffer_bytes, catalog,
                  NewPolicy(options.policy, &schedule, plan.lookahead(),
                            options.policy_victim_hints));
  pool.SetCallbacks(
      [&state](const ModePartition& unit) { return state.LoadUnit(unit); },
      [&state](const ModePartition& unit, bool dirty) {
        return state.EvictUnit(unit, dirty);
      });

  JsonValue ready = JsonValue::Object();
  ready.Set("t", "ready");
  ready.Set("plan_fp", static_cast<int64_t>(plan.fingerprint()));
  ready.Set("opts_fp", static_cast<int64_t>(options.ResumeFingerprint()));
  ready.Set("own_fp",
            static_cast<int64_t>(dplan.ownership_fingerprint()));
  ready.Set("fit", DoubleBits(state.SurrogateFit()));
  TPCP_RETURN_IF_ERROR(channel->Send(ready));

  AbsorbBuffer absorbs;
  std::set<ModePartition> pending_persist;
  std::set<int64_t> absorbed;
  // Positions whose absorbs CanDeferPast proved safe to slide into the
  // next wave (overlap pipeline); they are owed at that wave's commit.
  std::set<int64_t> deferred_expected;
  int64_t wave_begin = 0;
  int64_t wave_end = 0;

  // Overlap pipeline state. The compute thread runs one wave's owned
  // steps (pool access + update + exchange upload) while the main thread
  // keeps receiving — installing the previous wave's deferred absorbs as
  // the relay thread streams them. state_mu serializes RefinementState
  // and pool mutation between the two; the deferral proof guarantees the
  // interleavings are semantically disjoint (an absorbed unit is never
  // one this wave reads or refreshes), so the lock is purely for memory
  // ordering. Declared after state/pool/channel so its destructor joins
  // the thread before any of them die on an error path.
  std::mutex state_mu;
  struct ComputeTask {
    std::thread thread;
    Status status;
    ~ComputeTask() {
      if (thread.joinable()) thread.join();
    }
  } compute;

  // One wave's owned steps plus the trailing wave_done. `synchronized`
  // (overlap) takes state_mu around pool/state mutation and keeps the
  // wire encode outside it so absorb installs interleave with uploads.
  const auto run_owned_steps = [&](int64_t begin, int64_t end,
                                   bool synchronized) -> Status {
    for (int64_t pos = begin; pos < end; ++pos) {
      if (dplan.OwnerAt(pos) != worker_id) continue;
      if (hooks.crash_at_step == pos) {
        channel->Close();
        return Status::Internal("dist worker crash hook at step " +
                                std::to_string(pos));
      }
      const ModePartition unit = plan.UnitAt(pos);
      RefinementState::ExchangeImage image;
      {
        std::unique_lock<std::mutex> lock(state_mu, std::defer_lock);
        if (synchronized) lock.lock();
        TPCP_RETURN_IF_ERROR(pool.Access(unit, pos));
        state.ApplyUpdate(plan.StepAt(pos), plan.ShardBlocksAt(pos));
        image = state.ExportExchange(unit);
      }
      pool.MarkDirty(unit);
      pending_persist.insert(unit);
      TPCP_RETURN_IF_ERROR(SendExchange(channel.get(), pos, unit, image));
    }
    JsonValue done = JsonValue::Object();
    done.Set("t", "wave_done");
    return channel->Send(done);
  };

  for (;;) {
    JsonValue msg;
    TPCP_RETURN_IF_ERROR(channel->Recv(&msg));
    TPCP_ASSIGN_OR_RETURN(const std::string tag, GetString(msg, "t"));

    if (tag == "wave") {
      TPCP_ASSIGN_OR_RETURN(const int64_t begin, GetInt(msg, "pos"));
      TPCP_ASSIGN_OR_RETURN(const int64_t end, GetInt(msg, "end"));
      wave_begin = begin;
      wave_end = end;
      // Safe under overlap too: channels are FIFO and the coordinator
      // launches the deferred relay only after this wave's broadcast, so
      // every deferred absorb of the previous wave arrives after this
      // clear and before this wave's commit gate reads the set.
      absorbed.clear();
      if (overlap) {
        TPCP_CHECK(!compute.thread.joinable());
        compute.status = Status::OK();
        compute.thread = std::thread([&, begin, end] {
          const Status s = run_owned_steps(begin, end,
                                           /*synchronized=*/true);
          if (!s.ok()) {
            compute.status = s;
            // Unblock the main Recv loop; the error surfaces at the
            // commit-barrier join (or as the Recv failure it caused).
            channel->Close();
          }
        });
      } else {
        TPCP_RETURN_IF_ERROR(run_owned_steps(begin, end,
                                             /*synchronized=*/false));
      }
    } else if (tag == "absorb") {
      TPCP_RETURN_IF_ERROR(absorbs.Add(&state, msg, &absorbed,
                                       overlap ? &state_mu : nullptr));
    } else if (tag == "wave_commit") {
      if (compute.thread.joinable()) {
        compute.thread.join();
        TPCP_RETURN_IF_ERROR(compute.status);
      }
      // Absorb-completeness gate: by the commit barrier this worker must
      // hold every live image of the wave it does not own
      // (DistributedPlan::ImageLiveFor — the same pruning rule the relay
      // applies) except those CanDeferPast lets ride one more wave; plus
      // everything deferred out of the previous wave, which the relay
      // streamed during this one. A gap means the channel dropped an
      // absorb; dying here turns silent data loss into a
      // coordinator-visible worker fault the supervisor can recover from.
      for (const int64_t pos : deferred_expected) {
        if (absorbed.count(pos) == 0) {
          channel->Close();
          return Status::IOError(
              "dist worker: deferred absorb missing for plan position " +
              std::to_string(pos));
        }
      }
      deferred_expected.clear();
      for (int64_t pos = wave_begin; pos < wave_end; ++pos) {
        if (dplan.OwnerAt(pos) == worker_id) continue;
        if (!dplan.ImageLiveFor(pos, worker_id)) continue;
        if (overlap && dplan.CanDeferPast(pos, worker_id, wave_end)) {
          deferred_expected.insert(pos);
          continue;
        }
        if (absorbed.count(pos) == 0) {
          channel->Close();
          return Status::IOError(
              "dist worker: absorb missing for plan position " +
              std::to_string(pos));
        }
      }
      JsonValue ack = JsonValue::Object();
      ack.Set("t", "wave_ack");
      TPCP_RETURN_IF_ERROR(channel->Send(ack));
    } else if (tag == "vi_end") {
      JsonValue fit = JsonValue::Object();
      fit.Set("t", "fit");
      fit.Set("fit", DoubleBits(state.SurrogateFit()));
      TPCP_RETURN_IF_ERROR(channel->Send(fit));
    } else if (tag == "persist") {
      // Deterministic (mode, part) order: pending_persist is an ordered
      // set, so the coordinator's byte accounting and write order never
      // depend on update timing.
      for (const ModePartition& unit : pending_persist) {
        TPCP_ASSIGN_OR_RETURN(const Matrix a, state.CurrentSubFactor(unit));
        TPCP_RETURN_IF_ERROR(SendSubFactor(channel.get(), unit, a));
      }
      pending_persist.clear();
      JsonValue done = JsonValue::Object();
      done.Set("t", "persist_done");
      TPCP_RETURN_IF_ERROR(channel->Send(done));
    } else if (tag == "finish") {
      JsonValue bye = JsonValue::Object();
      bye.Set("t", "bye");
      TPCP_RETURN_IF_ERROR(channel->Send(bye));
      return Status::OK();
    } else {
      return Status::InvalidArgument("dist worker: unknown message '" +
                                     tag + "'");
    }
  }
}

}  // namespace tpcp
