// Chaos harness for the dist wire: a DistChannel that injects scripted
// faults (drop / delay / garbage / disconnect) at exact points in the
// protocol stream, so every recovery path in the coordinator's supervisor
// is deterministically reproducible.
//
// Determinism: the dist protocol's message sequence is a pure function of
// the plan, so "the worker's 7th outbound frame" names the same protocol
// moment in every run. Events are keyed by per-direction frame counters;
// heartbeat frames ("t":"hb") bypass chaos and the counters entirely,
// because their cadence is wall-clock-driven and would make the counters
// racy.

#ifndef TPCP_DIST_FAULTY_CHANNEL_H_
#define TPCP_DIST_FAULTY_CHANNEL_H_

#include <cstdint>
#include <vector>

#include "dist/exchange.h"

namespace tpcp {

/// One scripted fault, armed at a 0-based frame index in one direction.
struct ChaosEvent {
  enum class Op {
    kDrop,        // send: swallow the frame; recv: discard it and read on
    kDelay,       // sleep delay_ms, then proceed normally
    kGarbage,     // send: emit an undecodable frame instead of the message
    kDisconnect,  // close the socket mid-protocol
  };
  enum class Dir { kSend, kRecv };

  Op op = Op::kDrop;
  Dir dir = Dir::kSend;
  /// Which protocol frame (0-based, per direction, heartbeats excluded)
  /// the fault fires on.
  int64_t at_frame = 0;
  /// Sleep for kDelay.
  int64_t delay_ms = 0;
};

/// The full script for one channel's lifetime.
struct ChaosSchedule {
  std::vector<ChaosEvent> events;
  bool empty() const { return events.empty(); }
};

/// DistChannel with scripted fault injection on the protocol frames.
class FaultyChannel : public DistChannel {
 public:
  FaultyChannel(int fd, ChaosSchedule schedule)
      : DistChannel(fd), schedule_(std::move(schedule)) {}

  Status Send(const JsonValue& message) override;
  Status Recv(JsonValue* message) override;

 private:
  const ChaosEvent* EventFor(ChaosEvent::Dir dir, int64_t frame) const;

  ChaosSchedule schedule_;
  int64_t sent_frames_ = 0;
  int64_t recv_frames_ = 0;
};

}  // namespace tpcp

#endif  // TPCP_DIST_FAULTY_CHANNEL_H_
