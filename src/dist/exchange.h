// Wire vocabulary of the distributed Phase-2 executor (dist/coordinator.h,
// dist/worker.h): a blocking framed-JSON channel over a localhost socket
// plus bit-exact codecs for the values the protocol moves.
//
// The protocol reuses the tpcpd stack — server/json values inside
// server/wire length-prefixed frames — but runs its own message grammar
// ("t"-tagged objects). Two encoding rules keep the distributed run
// bit-identical to a single-process one:
//
//  - Matrices travel as base64 of their raw little-endian double bytes.
//    JSON number round-trips are not bit-faithful for doubles; raw bytes
//    are.
//  - Scalar doubles that must compare bitwise (surrogate fits, option
//    fields feeding ResumeFingerprint) travel as their IEEE-754 bit
//    pattern in an int64 (JSON integers round-trip exactly).
//
// Large payloads (sub-factors, long slab-M lists) are chunked by the
// callers so every frame stays under server/wire's 1 MiB ceiling.

#ifndef TPCP_DIST_EXCHANGE_H_
#define TPCP_DIST_EXCHANGE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include <mutex>

#include "core/config.h"
#include "grid/grid_partition.h"
#include "linalg/matrix.h"
#include "server/json.h"
#include "server/wire.h"
#include "util/retry.h"

namespace tpcp {

/// Matrix payload bytes per frame chunk. Well under kMaxFrameBytes even
/// after base64 (4/3) and JSON framing overhead.
constexpr uint64_t kDistChunkBytes = 256u * 1024u;

/// Bit-faithful double <-> int64 (IEEE-754 bit pattern).
int64_t DoubleBits(double value);
double BitsToDouble(int64_t bits);

/// Whole matrix as {"r","c","d"} with d = base64(raw LE doubles).
JsonValue EncodeMatrix(const Matrix& m);
Result<Matrix> DecodeMatrix(const JsonValue& v);

/// Row slice [row0, row0+row_count) of `m` as {"r","c","r0","rc","d"} —
/// the chunked form for matrices larger than one frame.
JsonValue EncodeMatrixRows(const Matrix& m, int64_t row0, int64_t row_count);
/// Installs a row-slice chunk into `*out` (resized to r x c on first use).
Status DecodeMatrixRowsInto(const JsonValue& v, Matrix* out);

/// Grid geometry as {"dims","parts"}.
JsonValue EncodeGrid(const GridPartition& grid);
Result<GridPartition> DecodeGrid(const JsonValue& v);

/// Every scalar field of TwoPhaseCpOptions (observer/cancel excluded), so
/// a worker rebuilds options whose ResumeFingerprint and Phase-2 planner
/// inputs equal the coordinator's exactly.
JsonValue EncodeOptions(const TwoPhaseCpOptions& options);
Result<TwoPhaseCpOptions> DecodeOptions(const JsonValue& v);

/// Blocking framed-JSON channel over a connected socket. Sends are
/// mutex-serialized so a heartbeat thread can share the channel with the
/// protocol loop; Recv stays single-consumer. Writes use MSG_NOSIGNAL so a
/// dead peer surfaces as a Status, never SIGPIPE.
///
/// Send/Recv/Close are virtual so the chaos harness (dist/faulty_channel.h)
/// can interpose scripted faults on the exact same code path.
class DistChannel {
 public:
  explicit DistChannel(int fd) : fd_(fd) {}
  virtual ~DistChannel() { CloseFd(); }
  DistChannel(const DistChannel&) = delete;
  DistChannel& operator=(const DistChannel&) = delete;

  virtual Status Send(const JsonValue& message);
  /// Blocks for the next frame. IOError("peer closed") on clean EOF;
  /// IOError("timed out") when an I/O deadline is set and the peer stays
  /// silent past it.
  virtual Status Recv(JsonValue* message);

  virtual void Close() { CloseFd(); }
  int fd() const { return fd_; }

  /// Quiet-period deadline for both directions: Recv fails when no bytes
  /// arrive for `ms`, Send fails when the socket stays unwritable for `ms`
  /// (peer dead with a full buffer). Negative = block forever (default).
  void set_io_timeout_ms(int ms) { io_timeout_ms_ = ms; }
  int io_timeout_ms() const { return io_timeout_ms_; }

  /// Detaches and returns the socket without closing it; the channel
  /// becomes unusable. For re-wrapping a fresh connection (chaos harness).
  int ReleaseFd();

 protected:
  /// Send/Recv over the raw socket, bypassing any chaos interposition —
  /// the base implementations subclasses delegate to.
  Status SendRaw(const JsonValue& message);
  Status RecvRaw(JsonValue* message);
  /// Writes raw bytes (not necessarily a valid frame) to the socket.
  /// Exposed for the chaos harness's garbage injection.
  Status SendBytes(const char* data, size_t size);
  void CloseFd();

 private:
  /// Atomic: under the overlap pipeline a worker's compute thread calls
  /// Close() to abort a Recv blocked on the protocol thread, so the fd is
  /// read and invalidated concurrently.
  std::atomic<int> fd_;
  int io_timeout_ms_ = -1;
  std::mutex send_mu_;
  FrameDecoder decoder_;
};

/// Listening socket on 127.0.0.1:`*port` (0 = ephemeral; *port is updated
/// to the bound port).
Result<int> DistListen(int* port);
/// Blocks for one inbound connection on `listen_fd`. With a non-negative
/// `timeout_ms`, returns IOError("accept timed out") when no worker
/// connects in time — a spawn that died before connecting must surface as
/// an error, not a hang.
Result<std::unique_ptr<DistChannel>> DistAccept(int listen_fd,
                                                int timeout_ms = -1);
/// Connects to 127.0.0.1:`port`, retrying transient failures (connection
/// refused while the coordinator is still binding, say) under `retry`.
Result<std::unique_ptr<DistChannel>> DistConnect(
    int port, const RetryPolicy& retry = RetryPolicy());

}  // namespace tpcp

#endif  // TPCP_DIST_EXCHANGE_H_
