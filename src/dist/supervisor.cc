#include "dist/supervisor.h"

#include <utility>

namespace tpcp {
namespace {

std::string WorkerName(int worker) {
  return worker >= 0 ? "worker " + std::to_string(worker) : "fleet";
}

}  // namespace

const char* DegradeModeName(DegradeMode mode) {
  switch (mode) {
    case DegradeMode::kOff:
      return "off";
    case DegradeMode::kShrink:
      return "shrink";
    case DegradeMode::kSingle:
      return "single";
  }
  return "?";
}

Result<DegradeMode> DegradeModeFromName(const std::string& name) {
  if (name == "off") return DegradeMode::kOff;
  if (name == "shrink") return DegradeMode::kShrink;
  if (name == "single") return DegradeMode::kSingle;
  return Status::InvalidArgument("unknown degrade mode '" + name +
                                 "' (choices: off, shrink, single)");
}

WorkerSupervisor::WorkerSupervisor(
    int fleet_size, int max_respawns, DegradeMode mode,
    std::function<void(const std::string&)> log)
    : fleet_size_(fleet_size),
      max_respawns_(max_respawns < 0 ? 0 : max_respawns),
      mode_(mode),
      log_(std::move(log)) {}

RecoveryDecision WorkerSupervisor::OnWorkerFault(int worker,
                                                 const Status& cause) {
  RecoveryDecision decision;
  if (respawns_ < max_respawns_) {
    ++respawns_;
    decision.action = RecoveryDecision::Action::kRespawn;
    decision.fleet_size = fleet_size_;
    Log("dist: " + WorkerName(worker) + " failed (" + cause.ToString() +
        "); respawning fleet of " + std::to_string(fleet_size_) +
        " from last checkpoint (respawn " + std::to_string(respawns_) + "/" +
        std::to_string(max_respawns_) + ")");
    return decision;
  }
  switch (mode_) {
    case DegradeMode::kOff:
      decision.action = RecoveryDecision::Action::kFail;
      decision.fleet_size = fleet_size_;
      Log("dist: " + WorkerName(worker) + " failed (" + cause.ToString() +
          "); respawn budget spent and degrade=off — failing the run");
      return decision;
    case DegradeMode::kShrink:
      if (fleet_size_ > 1) {
        ++degrades_;
        --fleet_size_;
        decision.action = RecoveryDecision::Action::kShrink;
        decision.fleet_size = fleet_size_;
        Log("dist: " + WorkerName(worker) + " failed (" + cause.ToString() +
            "); degrading to " + std::to_string(fleet_size_) +
            " worker(s), re-planned ownership, resuming from last "
            "checkpoint");
        return decision;
      }
      ++degrades_;
      fleet_size_ = 0;
      decision.action = RecoveryDecision::Action::kSingleProcess;
      decision.fleet_size = 0;
      Log("dist: " + WorkerName(worker) + " failed (" + cause.ToString() +
          "); degrading to single-process finish from last checkpoint");
      return decision;
    case DegradeMode::kSingle:
      ++degrades_;
      fleet_size_ = 0;
      decision.action = RecoveryDecision::Action::kSingleProcess;
      decision.fleet_size = 0;
      Log("dist: " + WorkerName(worker) + " failed (" + cause.ToString() +
          "); degrading to single-process finish from last checkpoint");
      return decision;
  }
  return decision;
}

void WorkerSupervisor::Log(const std::string& line) const {
  if (log_) log_(line);
}

}  // namespace tpcp
