// Distributed Phase-2 coordinator: executes one ExecutionPlan across N
// worker processes (dist/worker.h) and keeps the run bit-identical to a
// single-process Phase2Engine run of the same fingerprinted plan.
//
// Responsibilities, in protocol order:
//
//  - Builds the plan exactly as Phase2Engine::Run would (same
//    Phase2PlannerOptions), mirrors its checkpoint-resume validation, and
//    seeds fresh runs' sub-factors precisely as
//    RefinementState::Initialize(false) would — so workers can always
//    initialize in resume mode against the persisted state.
//  - Drives the wave loop: broadcasts each conflict-free wave, collects
//    the owners' metadata images (in worker-id order), relays them to
//    every non-owner, and barriers on wave_commit/wave_ack.
//  - Overlap pipeline (DistributedRunOptions::overlap): relays whose
//    recipients provably do not read the image during the next wave
//    (DistributedPlan::CanDeferPast — the planner's liveness analysis
//    applied across one wave boundary) are deferred and sent by a
//    background relay thread *while the next wave computes*; the rest are
//    sent immediately as before. Deferred frames are confirmed absorbed at
//    the next wave's commit barrier and never cross a virtual-iteration
//    boundary, so every commit/checkpoint cut sees the identical metadata
//    state and the identical ledger as barrier execution — the pipeline is
//    bit-identical by construction and only the wall-clock shrinks. The
//    hidden relay work is reported as overlapped_bytes / hidden_seconds.
//  - At each virtual-iteration boundary collects every worker's surrogate
//    fit and requires them bitwise equal (a divergence is an Internal
//    error, never silently averaged), then applies the engine's exact
//    convergence rule.
//  - Alone writes the base factor store: collects all workers' dirty
//    sub-factors at the persist boundary, writes them in sorted unit
//    order, then cuts a Phase2Checkpoint manifest. The base store never
//    gets ahead of the checkpoint cursor, so a worker killed at any
//    instant leaves a store a single-process resume_phase2 run continues
//    bit-identically.
//  - Accounts every relayed byte (logical matrix bytes, the
//    DistributedPlan definition) so tests can assert measured == predicted
//    exactly against schedule/planner.h's cluster traffic model. The relay
//    prunes dead absorbs (DistributedPlan::ImageLiveFor): images no
//    recipient reads before their next refresh are never sent, and the
//    prediction applies the identical rule, so measured == predicted stays
//    exact while block-centric schedules move fewer bytes.
//
// Fault tolerance (dist/supervisor.h): every worker channel carries
// read/write deadlines and workers heartbeat through them, so a dead or
// wedged worker surfaces as a worker-attributed channel error in bounded
// time — never a hang. Because the base store only advances at checkpoint
// boundaries and workers always initialize from it, recovery is "tear the
// fleet down, restart from the last vi checkpoint": the supervisor
// respawns at the same size while the --max-respawns budget lasts, then
// degrades per DegradeMode (shed a worker and re-plan ownership, or
// finish in-process). Every recovery path replays the identical plan
// positions, so recovered runs stay byte-identical to uninterrupted ones;
// only the wire ledger is re-priced (and the bytes a failed attempt moved
// past its last checkpoint are reported as wasted_bytes). Content-level
// violations (fingerprint mismatches, fit divergence, ownership
// violations) are never retried — they mean the protocol itself failed.

#ifndef TPCP_DIST_COORDINATOR_H_
#define TPCP_DIST_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include <string>

#include "core/block_factors.h"
#include "core/config.h"
#include "core/phase2_engine.h"
#include "dist/supervisor.h"
#include "schedule/planner.h"
#include "util/status.h"

namespace tpcp {

/// How RunDistributedPhase2 forms its worker fleet.
struct DistributedRunOptions {
  /// Worker processes (>= 1). Ownership: the weighted DistributedPlan
  /// map — units assigned heaviest-first to the least-loaded worker,
  /// identical on coordinator and workers, fingerprint-validated at hello
  /// and on checkpoint resume.
  int num_workers = 2;
  /// Coordinator listen port (0 = ephemeral).
  int listen_port = 0;
  /// How long to wait for each worker to connect before declaring the
  /// spawn dead.
  int accept_timeout_ms = 30000;
  /// Launches worker `worker`, which must call ServeDistWorker against
  /// 127.0.0.1:`port`. Required. The callback returns once the worker is
  /// *launched* (forked / thread started), not once it connects. Under
  /// recovery the callback is invoked again for the same worker id (and,
  /// after a degrade, for a smaller id range).
  std::function<Status(int port, int worker)> spawn_worker;

  /// Interval at which workers heartbeat to the coordinator. <= 0
  /// disables heartbeats (and, with io_timeout_ms == 0, all deadlines —
  /// the pre-supervision wire behavior).
  int heartbeat_ms = 1000;
  /// Quiet-period deadline on every worker channel in both directions.
  /// 0 derives 10 * heartbeat_ms; < 0 disables deadlines.
  int io_timeout_ms = 0;
  /// Fleet restarts at the same size before the supervisor degrades.
  int max_respawns = 2;
  /// What to do once the respawn budget is spent.
  DegradeMode degrade = DegradeMode::kShrink;
  /// Operator-visible recovery lines ("dist: worker 1 failed …"). Optional.
  std::function<void(const std::string&)> log;

  /// Overlapped exchange/compute pipeline: defer the relays
  /// CanDeferPast proves safe into the next wave's compute window
  /// (coordinator relay thread + worker absorb-while-compute). Off runs
  /// the strict per-wave barrier. Not a math-shaping option — both
  /// settings produce bit-identical factors, fit traces, checkpoints, and
  /// ledgers — so it is deliberately excluded from ResumeFingerprint.
  bool overlap = false;
  /// Test/bench-only simulated link throttle: the coordinator sleeps this
  /// long per relayed absorb frame (immediate and deferred alike), so a
  /// slow link's serialization cost is paid identically in both modes and
  /// the pipeline's hiding becomes measurable on loopback. 0 = off.
  int relay_throttle_us = 0;
};

/// Outcome of a distributed run: the engine-equivalent Phase-2 result plus
/// the exchange-byte ledger (measured on the wire vs predicted by
/// DistributedPlan — equal by construction, asserted in tests).
struct DistributedRunResult {
  /// fit_trace / virtual_iterations / converged / surrogate_fit /
  /// start_iteration / seconds are filled exactly as Phase2Engine would;
  /// buffer_stats and swap counts stay zero (pools live in the workers).
  Phase2Result phase2;
  uint64_t plan_fingerprint = 0;
  /// Per worker, metadata bytes/messages actually relayed (up: worker ->
  /// coordinator, down: coordinator -> worker).
  std::vector<WorkerTraffic> measured;
  /// Per worker, DistributedPlan::TrafficForRange over the executed
  /// positions.
  std::vector<WorkerTraffic> predicted;
  /// Per worker, sub-factor bytes uploaded at persist boundaries.
  std::vector<uint64_t> measured_persist_bytes;
  /// Per worker, DistributedPlan::PersistBytesForRange over the executed
  /// persist windows.
  std::vector<uint64_t> predicted_persist_bytes;

  /// Recovery telemetry. The ledgers above hold only *committed* traffic
  /// (attempts roll back to their last checkpoint on failure), accrued per
  /// current-fleet worker id, so measured == predicted stays exact across
  /// respawns and degrades; bytes a failed attempt moved past its last
  /// checkpoint land in wasted_bytes instead.
  int respawns = 0;
  int degrades = 0;
  /// Workers in the fleet that finished the run (0 when the run degraded
  /// all the way to the in-process engine).
  int final_workers = 0;
  bool finished_single_process = false;
  uint64_t wasted_bytes = 0;

  /// Overlap telemetry (committed attempts only, like the ledgers).
  /// Logical bytes relayed by the background thread inside compute
  /// windows; a subset of the measured down_bytes, which stay exact.
  uint64_t overlapped_bytes = 0;
  /// Wall-clock seconds of background relay work that finished before the
  /// wave's collection did — time a barrier execution would have appended
  /// to the critical path.
  double hidden_seconds = 0.0;
};

/// Runs Phase 2 of the decomposition in `factors` across
/// `dopts.num_workers` workers. `factors` must already hold the Phase-1
/// block factors (and, when options.resume_phase2 is set, whatever
/// sub-factor state the previous run persisted). On success the store
/// holds the final sub-factors and a plain (checkpoint-free) manifest,
/// byte-identical to a single-process run of the same plan.
Status RunDistributedPhase2(BlockFactorStore* factors,
                            const TwoPhaseCpOptions& options,
                            const DistributedRunOptions& dopts,
                            DistributedRunResult* result);

}  // namespace tpcp

#endif  // TPCP_DIST_COORDINATOR_H_
