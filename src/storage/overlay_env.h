// Copy-on-write overlay over a base Env.
//
// Reads fall through to the base environment until a file is written (or
// deleted) through the overlay; from then on the overlay's in-memory copy
// wins. The base Env is never mutated. Distributed Phase-2 workers run
// their buffer pool against an overlay so sub-factor evictions stay local:
// only the coordinator ever writes the shared base store, which is what
// keeps a worker crash from moving the persisted factors past the last
// checkpoint.

#ifndef TPCP_STORAGE_OVERLAY_ENV_H_
#define TPCP_STORAGE_OVERLAY_ENV_H_

#include <memory>

#include "storage/env.h"

namespace tpcp {

/// Returns an Env whose writes and deletes land in memory while reads of
/// untouched files pass through to `base`. `base` must outlive the overlay
/// and is only read, never written.
std::unique_ptr<Env> NewOverlayEnv(Env* base);

}  // namespace tpcp

#endif  // TPCP_STORAGE_OVERLAY_ENV_H_
