// XOR-based compression for sequences of doubles (Gorilla-style, Pelkonen
// et al., VLDB'15), specialized for the smooth factor-matrix and dense
// tensor payloads this system persists.
//
// The paper points out that on-disk representation may be compressed and
// that compression/decompression costs then join the I/O path (Section
// VIII-C); this codec plus CompressedEnv (compressed_env.h) make that
// configuration available and measurable.
//
// Encoding per value, relative to its predecessor:
//   bit 0        value == previous (XOR == 0)
//   bits 10      XOR fits the previous leading/trailing-zero window;
//                emit the significant bits only
//   bits 11      new window: 6 bits of leading-zero count, 6 bits of
//                significant-bit length, then the bits

#ifndef TPCP_STORAGE_DOUBLE_CODEC_H_
#define TPCP_STORAGE_DOUBLE_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace tpcp {

/// Compresses `count` doubles. Output begins with the count (8 bytes) so
/// decoding is self-delimiting.
std::string CompressDoubles(const double* values, size_t count);

/// Decompresses a CompressDoubles payload.
Result<std::vector<double>> DecompressDoubles(const std::string& bytes);

}  // namespace tpcp

#endif  // TPCP_STORAGE_DOUBLE_CODEC_H_
