#include "storage/serializer.h"

#include <cstring>

#include "storage/crc32.h"

namespace tpcp {
namespace {

constexpr uint32_t kMagic = 0x32504350;  // "2PCP"
constexpr uint8_t kKindMatrix = 1;
constexpr uint8_t kKindTensor = 2;

void AppendRaw(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

template <typename T>
void AppendPod(std::string* out, T value) {
  AppendRaw(out, &value, sizeof(T));
}

// Cursor-based reader returning false on underflow.
class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  template <typename T>
  bool Read(T* out) {
    if (pos_ + sizeof(T) > bytes_.size()) return false;
    std::memcpy(out, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadDoubles(double* out, size_t count) {
    const size_t n = count * sizeof(double);
    if (pos_ + n > bytes_.size()) return false;
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  size_t pos() const { return pos_; }

 private:
  const std::string& bytes_;
  size_t pos_ = 0;
};

std::string SerializeDims(uint8_t kind, const std::vector<int64_t>& dims,
                          const double* payload, int64_t count) {
  std::string out;
  out.reserve(17 + dims.size() * 8 + static_cast<size_t>(count) * 8 + 4);
  AppendPod(&out, kMagic);
  AppendPod(&out, kind);
  AppendPod(&out, static_cast<uint32_t>(dims.size()));
  for (int64_t d : dims) AppendPod(&out, d);
  AppendRaw(&out, payload, static_cast<size_t>(count) * sizeof(double));
  const uint32_t crc = Crc32(out.data(), out.size());
  AppendPod(&out, crc);
  return out;
}

Status CheckEnvelope(const std::string& bytes, uint8_t expected_kind,
                     Reader* reader, uint32_t* ndims) {
  if (bytes.size() < 13) return Status::Corruption("record too short");
  const uint32_t stored_crc =
      Crc32(bytes.data(), bytes.size() - sizeof(uint32_t));
  uint32_t file_crc = 0;
  std::memcpy(&file_crc, bytes.data() + bytes.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  if (stored_crc != file_crc) {
    return Status::Corruption("checksum mismatch");
  }
  uint32_t magic = 0;
  uint8_t kind = 0;
  if (!reader->Read(&magic) || !reader->Read(&kind) || !reader->Read(ndims)) {
    return Status::Corruption("truncated header");
  }
  if (magic != kMagic) return Status::Corruption("bad magic");
  if (kind != expected_kind) return Status::Corruption("wrong record kind");
  if (*ndims == 0 || *ndims > 64) {
    return Status::Corruption("implausible ndims");
  }
  return Status::OK();
}

}  // namespace

std::string SerializeMatrix(const Matrix& m) {
  return SerializeDims(kKindMatrix, {m.rows(), m.cols()}, m.data(), m.size());
}

Result<Matrix> DeserializeMatrix(const std::string& bytes) {
  Reader reader(bytes);
  uint32_t ndims = 0;
  TPCP_RETURN_IF_ERROR(CheckEnvelope(bytes, kKindMatrix, &reader, &ndims));
  if (ndims != 2) return Status::Corruption("matrix record must have 2 dims");
  int64_t rows = 0, cols = 0;
  if (!reader.Read(&rows) || !reader.Read(&cols) || rows < 0 || cols < 0) {
    return Status::Corruption("bad matrix dims");
  }
  Matrix m(rows, cols);
  if (!reader.ReadDoubles(m.data(), static_cast<size_t>(m.size()))) {
    return Status::Corruption("truncated matrix payload");
  }
  return m;
}

std::string SerializeTensor(const DenseTensor& t) {
  return SerializeDims(kKindTensor, t.shape().dims(), t.data(),
                       t.NumElements());
}

Result<DenseTensor> DeserializeTensor(const std::string& bytes) {
  Reader reader(bytes);
  uint32_t ndims = 0;
  TPCP_RETURN_IF_ERROR(CheckEnvelope(bytes, kKindTensor, &reader, &ndims));
  std::vector<int64_t> dims(ndims);
  for (uint32_t i = 0; i < ndims; ++i) {
    if (!reader.Read(&dims[i]) || dims[i] <= 0) {
      return Status::Corruption("bad tensor dims");
    }
  }
  DenseTensor t{Shape(dims)};
  if (!reader.ReadDoubles(t.data(), static_cast<size_t>(t.NumElements()))) {
    return Status::Corruption("truncated tensor payload");
  }
  return t;
}

Status WriteMatrix(Env* env, const std::string& name, const Matrix& m) {
  return env->WriteFile(name, SerializeMatrix(m));
}

Result<Matrix> ReadMatrix(Env* env, const std::string& name) {
  std::string bytes;
  TPCP_RETURN_IF_ERROR(env->ReadFile(name, &bytes));
  return DeserializeMatrix(bytes);
}

Status WriteTensor(Env* env, const std::string& name, const DenseTensor& t) {
  return env->WriteFile(name, SerializeTensor(t));
}

Result<DenseTensor> ReadTensor(Env* env, const std::string& name) {
  std::string bytes;
  TPCP_RETURN_IF_ERROR(env->ReadFile(name, &bytes));
  return DeserializeTensor(bytes);
}

}  // namespace tpcp
