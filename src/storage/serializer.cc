#include "storage/serializer.h"

#include <cstring>

#include "storage/crc32.h"

namespace tpcp {
namespace {

constexpr uint32_t kMagic = 0x32504350;  // "2PCP"
constexpr uint8_t kKindMatrix = 1;
constexpr uint8_t kKindTensor = 2;
constexpr uint8_t kKindSparseCoo = 3;
constexpr uint8_t kKindSparseCsf = 4;

void AppendRaw(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

template <typename T>
void AppendPod(std::string* out, T value) {
  AppendRaw(out, &value, sizeof(T));
}

// LEB128 unsigned varint.
void AppendVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

uint64_t ZigZagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

int64_t ZigZagDecode(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^
         -static_cast<int64_t>(value & 1);
}

// Index array as zigzag varints of successive deltas (first vs 0): small
// within-fiber jumps cost one byte regardless of the coordinate magnitude.
void AppendDeltaArray(std::string* out, const std::vector<int64_t>& values) {
  int64_t prev = 0;
  for (int64_t v : values) {
    AppendVarint(out, ZigZagEncode(v - prev));
    prev = v;
  }
}

// Monotone offset array as unsigned varints of successive deltas.
void AppendMonotoneArray(std::string* out,
                         const std::vector<int64_t>& values) {
  int64_t prev = 0;
  for (int64_t v : values) {
    AppendVarint(out, static_cast<uint64_t>(v - prev));
    prev = v;
  }
}

// Cursor-based reader returning false on underflow.
class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  template <typename T>
  bool Read(T* out) {
    if (pos_ + sizeof(T) > bytes_.size()) return false;
    std::memcpy(out, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadDoubles(double* out, size_t count) {
    const size_t n = count * sizeof(double);
    if (pos_ + n > bytes_.size()) return false;
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  bool ReadVarint(uint64_t* out) {
    uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ >= bytes_.size()) return false;
      const uint8_t byte = static_cast<uint8_t>(bytes_[pos_++]);
      value |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        *out = value;
        return true;
      }
    }
    return false;
  }

  size_t pos() const { return pos_; }

 private:
  const std::string& bytes_;
  size_t pos_ = 0;
};

std::string SerializeDims(uint8_t kind, const std::vector<int64_t>& dims,
                          const double* payload, int64_t count) {
  std::string out;
  out.reserve(17 + dims.size() * 8 + static_cast<size_t>(count) * 8 + 4);
  AppendPod(&out, kMagic);
  AppendPod(&out, kind);
  AppendPod(&out, static_cast<uint32_t>(dims.size()));
  for (int64_t d : dims) AppendPod(&out, d);
  AppendRaw(&out, payload, static_cast<size_t>(count) * sizeof(double));
  const uint32_t crc = Crc32(out.data(), out.size());
  AppendPod(&out, crc);
  return out;
}

// Validates crc + magic + header and reports the record kind.
Status CheckEnvelopeAny(const std::string& bytes, Reader* reader,
                        uint8_t* kind, uint32_t* ndims) {
  if (bytes.size() < 13) return Status::Corruption("record too short");
  const uint32_t stored_crc =
      Crc32(bytes.data(), bytes.size() - sizeof(uint32_t));
  uint32_t file_crc = 0;
  std::memcpy(&file_crc, bytes.data() + bytes.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  if (stored_crc != file_crc) {
    return Status::Corruption("checksum mismatch");
  }
  uint32_t magic = 0;
  if (!reader->Read(&magic) || !reader->Read(kind) || !reader->Read(ndims)) {
    return Status::Corruption("truncated header");
  }
  if (magic != kMagic) return Status::Corruption("bad magic");
  if (*ndims == 0 || *ndims > 64) {
    return Status::Corruption("implausible ndims");
  }
  return Status::OK();
}

Status CheckEnvelope(const std::string& bytes, uint8_t expected_kind,
                     Reader* reader, uint32_t* ndims) {
  uint8_t kind = 0;
  TPCP_RETURN_IF_ERROR(CheckEnvelopeAny(bytes, reader, &kind, ndims));
  if (kind != expected_kind) return Status::Corruption("wrong record kind");
  return Status::OK();
}

// Shared header tail: dims for a sparse record (all must be positive).
Status ReadShapeDims(Reader* reader, uint32_t ndims,
                     std::vector<int64_t>* dims) {
  dims->resize(ndims);
  for (uint32_t i = 0; i < ndims; ++i) {
    if (!reader->Read(&(*dims)[i]) || (*dims)[i] <= 0) {
      return Status::Corruption("bad tensor dims");
    }
  }
  return Status::OK();
}

Result<SparseTensor> DeserializeSparseCooRecord(const std::string& bytes) {
  Reader reader(bytes);
  uint32_t ndims = 0;
  TPCP_RETURN_IF_ERROR(
      CheckEnvelope(bytes, kKindSparseCoo, &reader, &ndims));
  std::vector<int64_t> dims;
  TPCP_RETURN_IF_ERROR(ReadShapeDims(&reader, ndims, &dims));
  int64_t nnz = 0;
  if (!reader.Read(&nnz) || nnz < 0) {
    return Status::Corruption("bad sparse nnz");
  }
  SparseTensor t{Shape(dims)};
  Index index(ndims);
  std::vector<Index> coords(static_cast<size_t>(nnz));
  for (int64_t e = 0; e < nnz; ++e) {
    for (uint32_t m = 0; m < ndims; ++m) {
      int64_t c = 0;
      if (!reader.Read(&c) || c < 0 || c >= dims[m]) {
        return Status::Corruption("sparse coordinate out of range");
      }
      index[m] = c;
    }
    coords[static_cast<size_t>(e)] = index;
  }
  std::vector<double> values(static_cast<size_t>(nnz));
  if (!reader.ReadDoubles(values.data(), values.size())) {
    return Status::Corruption("truncated sparse payload");
  }
  for (int64_t e = 0; e < nnz; ++e) {
    t.Add(std::move(coords[static_cast<size_t>(e)]),
          values[static_cast<size_t>(e)]);
  }
  return t;
}

}  // namespace

std::string SerializeMatrix(const Matrix& m) {
  return SerializeDims(kKindMatrix, {m.rows(), m.cols()}, m.data(), m.size());
}

Result<Matrix> DeserializeMatrix(const std::string& bytes) {
  Reader reader(bytes);
  uint32_t ndims = 0;
  TPCP_RETURN_IF_ERROR(CheckEnvelope(bytes, kKindMatrix, &reader, &ndims));
  if (ndims != 2) return Status::Corruption("matrix record must have 2 dims");
  int64_t rows = 0, cols = 0;
  if (!reader.Read(&rows) || !reader.Read(&cols) || rows < 0 || cols < 0) {
    return Status::Corruption("bad matrix dims");
  }
  Matrix m(rows, cols);
  if (!reader.ReadDoubles(m.data(), static_cast<size_t>(m.size()))) {
    return Status::Corruption("truncated matrix payload");
  }
  return m;
}

std::string SerializeTensor(const DenseTensor& t) {
  return SerializeDims(kKindTensor, t.shape().dims(), t.data(),
                       t.NumElements());
}

Result<DenseTensor> DeserializeTensor(const std::string& bytes) {
  Reader reader(bytes);
  uint32_t ndims = 0;
  TPCP_RETURN_IF_ERROR(CheckEnvelope(bytes, kKindTensor, &reader, &ndims));
  std::vector<int64_t> dims(ndims);
  for (uint32_t i = 0; i < ndims; ++i) {
    if (!reader.Read(&dims[i]) || dims[i] <= 0) {
      return Status::Corruption("bad tensor dims");
    }
  }
  DenseTensor t{Shape(dims)};
  if (!reader.ReadDoubles(t.data(), static_cast<size_t>(t.NumElements()))) {
    return Status::Corruption("truncated tensor payload");
  }
  return t;
}

std::string SerializeSparseCoo(const SparseTensor& t) {
  const uint32_t ndims = static_cast<uint32_t>(t.num_modes());
  std::string out;
  out.reserve(17 + static_cast<size_t>(ndims) * 8 +
              static_cast<size_t>(t.nnz()) * (ndims + 1) * 8 + 12);
  AppendPod(&out, kMagic);
  AppendPod(&out, kKindSparseCoo);
  AppendPod(&out, ndims);
  for (int64_t d : t.shape().dims()) AppendPod(&out, d);
  AppendPod(&out, t.nnz());
  for (const SparseEntry& e : t.entries()) {
    for (int64_t c : e.index) AppendPod(&out, c);
  }
  for (const SparseEntry& e : t.entries()) AppendPod(&out, e.value);
  const uint32_t crc = Crc32(out.data(), out.size());
  AppendPod(&out, crc);
  return out;
}

std::string SerializeSparseCsf(const CsfTensor& t) {
  const int n = t.num_modes();
  const uint32_t ndims = static_cast<uint32_t>(n);
  std::string out;
  out.reserve(17 + static_cast<size_t>(ndims) * 16 +
              static_cast<size_t>(t.nnz()) * 10 + 12);
  AppendPod(&out, kMagic);
  AppendPod(&out, kKindSparseCsf);
  AppendPod(&out, ndims);
  for (int64_t d : t.shape().dims()) AppendPod(&out, d);
  AppendPod(&out, t.nnz());
  for (int l = 0; l < n; ++l) AppendPod(&out, t.num_nodes(l));
  for (int l = 0; l < n; ++l) AppendDeltaArray(&out, t.idx(l));
  for (int l = 0; l + 1 < n; ++l) AppendMonotoneArray(&out, t.ptr(l));
  for (double v : t.values()) AppendPod(&out, v);
  const uint32_t crc = Crc32(out.data(), out.size());
  AppendPod(&out, crc);
  return out;
}

Result<CsfTensor> DeserializeSparseCsf(const std::string& bytes) {
  Reader reader(bytes);
  uint32_t ndims = 0;
  TPCP_RETURN_IF_ERROR(
      CheckEnvelope(bytes, kKindSparseCsf, &reader, &ndims));
  std::vector<int64_t> dims;
  TPCP_RETURN_IF_ERROR(ReadShapeDims(&reader, ndims, &dims));
  const int n = static_cast<int>(ndims);
  int64_t nnz = 0;
  if (!reader.Read(&nnz) || nnz < 0) {
    return Status::Corruption("bad sparse nnz");
  }
  std::vector<int64_t> num_nodes(ndims);
  for (uint32_t l = 0; l < ndims; ++l) {
    if (!reader.Read(&num_nodes[l]) || num_nodes[l] < 0) {
      return Status::Corruption("bad CSF node count");
    }
  }
  if (num_nodes[ndims - 1] != nnz) {
    return Status::Corruption("CSF leaf count != nnz");
  }
  std::vector<std::vector<int64_t>> idx(ndims);
  for (uint32_t l = 0; l < ndims; ++l) {
    idx[l].resize(static_cast<size_t>(num_nodes[l]));
    int64_t prev = 0;
    for (int64_t& v : idx[l]) {
      uint64_t raw = 0;
      if (!reader.ReadVarint(&raw)) {
        return Status::Corruption("truncated CSF index array");
      }
      prev += ZigZagDecode(raw);
      if (prev < 0 || prev >= dims[l]) {
        return Status::Corruption("CSF coordinate out of range");
      }
      v = prev;
    }
  }
  std::vector<std::vector<int64_t>> ptr(n > 0 ? ndims - 1 : 0);
  for (int l = 0; l + 1 < n; ++l) {
    ptr[static_cast<size_t>(l)].resize(
        static_cast<size_t>(num_nodes[static_cast<size_t>(l)]) + 1);
    int64_t prev = 0;
    for (int64_t& v : ptr[static_cast<size_t>(l)]) {
      uint64_t raw = 0;
      if (!reader.ReadVarint(&raw)) {
        return Status::Corruption("truncated CSF pointer array");
      }
      prev += static_cast<int64_t>(raw);
      v = prev;
    }
    const std::vector<int64_t>& p = ptr[static_cast<size_t>(l)];
    if (p.front() != 0 || p.back() != num_nodes[static_cast<size_t>(l) + 1]) {
      return Status::Corruption("CSF pointer array out of bounds");
    }
  }
  std::vector<double> values(static_cast<size_t>(nnz));
  if (!reader.ReadDoubles(values.data(), values.size())) {
    return Status::Corruption("truncated CSF values");
  }
  return CsfTensor::FromLevels(Shape(dims), std::move(idx), std::move(ptr),
                               std::move(values));
}

Result<SparseTensor> DeserializeSparse(const std::string& bytes) {
  Result<uint8_t> kind = PeekRecordKind(bytes);
  TPCP_RETURN_IF_ERROR(kind.status());
  switch (kind.value()) {
    case kKindSparseCoo:
      return DeserializeSparseCooRecord(bytes);
    case kKindSparseCsf: {
      Result<CsfTensor> csf = DeserializeSparseCsf(bytes);
      TPCP_RETURN_IF_ERROR(csf.status());
      return csf.value().ToSparse();
    }
    default:
      return Status::Corruption("not a sparse tensor record");
  }
}

Result<DenseTensor> DeserializeTensorAny(const std::string& bytes) {
  Result<uint8_t> kind = PeekRecordKind(bytes);
  TPCP_RETURN_IF_ERROR(kind.status());
  switch (kind.value()) {
    case kKindTensor:
      return DeserializeTensor(bytes);
    case kKindSparseCoo: {
      Result<SparseTensor> coo = DeserializeSparseCooRecord(bytes);
      TPCP_RETURN_IF_ERROR(coo.status());
      return coo.value().ToDense();
    }
    case kKindSparseCsf: {
      Result<CsfTensor> csf = DeserializeSparseCsf(bytes);
      TPCP_RETURN_IF_ERROR(csf.status());
      return csf.value().ToDense();
    }
    default:
      return Status::Corruption("not a tensor record");
  }
}

Result<uint8_t> PeekRecordKind(const std::string& bytes) {
  Reader reader(bytes);
  uint8_t kind = 0;
  uint32_t ndims = 0;
  TPCP_RETURN_IF_ERROR(CheckEnvelopeAny(bytes, &reader, &kind, &ndims));
  return kind;
}

Status WriteMatrix(Env* env, const std::string& name, const Matrix& m) {
  return env->WriteFile(name, SerializeMatrix(m));
}

Result<Matrix> ReadMatrix(Env* env, const std::string& name) {
  std::string bytes;
  TPCP_RETURN_IF_ERROR(env->ReadFile(name, &bytes));
  return DeserializeMatrix(bytes);
}

Status WriteTensor(Env* env, const std::string& name, const DenseTensor& t) {
  return env->WriteFile(name, SerializeTensor(t));
}

Result<DenseTensor> ReadTensor(Env* env, const std::string& name) {
  std::string bytes;
  TPCP_RETURN_IF_ERROR(env->ReadFile(name, &bytes));
  return DeserializeTensor(bytes);
}

Status WriteSparseCoo(Env* env, const std::string& name,
                      const SparseTensor& t) {
  return env->WriteFile(name, SerializeSparseCoo(t));
}

Status WriteSparseCsf(Env* env, const std::string& name,
                      const CsfTensor& t) {
  return env->WriteFile(name, SerializeSparseCsf(t));
}

Result<SparseTensor> ReadSparse(Env* env, const std::string& name) {
  std::string bytes;
  TPCP_RETURN_IF_ERROR(env->ReadFile(name, &bytes));
  return DeserializeSparse(bytes);
}

Result<DenseTensor> ReadTensorAny(Env* env, const std::string& name) {
  std::string bytes;
  TPCP_RETURN_IF_ERROR(env->ReadFile(name, &bytes));
  return DeserializeTensorAny(bytes);
}

}  // namespace tpcp
