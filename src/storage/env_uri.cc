#include "storage/env_uri.h"

#include <algorithm>

#include "storage/compressed_env.h"
#include "storage/faulty_env.h"
#include "storage/retry_env.h"
#include "storage/throttled_env.h"
#include "util/format.h"
#include "util/parse.h"

namespace tpcp {

Result<ParsedEnvUri> ParseEnvUri(const std::string& uri) {
  const size_t sep = uri.find("://");
  if (sep == std::string::npos) {
    return Status::InvalidArgument("storage URI '" + uri +
                                   "' is missing '://'");
  }
  ParsedEnvUri parsed;

  // The head is a '+'-separated chain: wrappers outermost-first, then the
  // base scheme.
  std::vector<std::string> chain;
  {
    const std::string head = uri.substr(0, sep);
    size_t start = 0;
    while (true) {
      const size_t plus = head.find('+', start);
      chain.push_back(head.substr(
          start, plus == std::string::npos ? std::string::npos : plus - start));
      if (plus == std::string::npos) break;
      start = plus + 1;
    }
  }
  for (const std::string& name : chain) {
    if (name.empty()) {
      return Status::InvalidArgument("storage URI '" + uri +
                                     "' has an empty scheme or wrapper name");
    }
  }
  parsed.scheme = chain.back();
  chain.pop_back();
  parsed.wrappers = std::move(chain);

  // Path up to '?', then the query.
  const std::string rest = uri.substr(sep + 3);
  const size_t qmark = rest.find('?');
  parsed.path = rest.substr(0, qmark);
  if (qmark != std::string::npos) {
    const std::string query = rest.substr(qmark + 1);
    size_t start = 0;
    while (start <= query.size()) {
      const size_t amp = query.find('&', start);
      const std::string term = query.substr(
          start, amp == std::string::npos ? std::string::npos : amp - start);
      const size_t eq = term.find('=');
      if (eq == std::string::npos || eq == 0) {
        return Status::InvalidArgument("storage URI query term '" + term +
                                       "' is not key=value");
      }
      parsed.query[term.substr(0, eq)] = term.substr(eq + 1);
      if (amp == std::string::npos) break;
      start = amp + 1;
    }
  }
  return parsed;
}

std::optional<std::string> UriParams::Get(const std::string& key) {
  const auto it = query_.find(key);
  if (it == query_.end()) return std::nullopt;
  consumed_.insert(key);
  return it->second;
}

Result<int64_t> UriParams::GetInt(const std::string& key, int64_t fallback) {
  const std::optional<std::string> raw = Get(key);
  if (!raw.has_value()) return fallback;
  auto value = ParseInt64(*raw);
  if (!value.ok()) {
    return Status::InvalidArgument("parameter '" + key +
                                   "': " + value.status().message());
  }
  return *value;
}

Result<double> UriParams::GetDouble(const std::string& key, double fallback) {
  const std::optional<std::string> raw = Get(key);
  if (!raw.has_value()) return fallback;
  auto value = ParseDouble(*raw);
  if (!value.ok()) {
    return Status::InvalidArgument("parameter '" + key +
                                   "': " + value.status().message());
  }
  return *value;
}

std::vector<std::string> UriParams::UnconsumedKeys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : query_) {
    if (consumed_.find(key) == consumed_.end()) out.push_back(key);
  }
  return out;
}

EnvFactoryRegistry::EnvFactoryRegistry() {
  // ---- Built-in backends. ----
  schemes_["mem"] = [](const std::string& path,
                       UriParams*) -> Result<std::unique_ptr<Env>> {
    if (!path.empty()) {
      return Status::InvalidArgument("mem:// takes no path (got '" + path +
                                     "')");
    }
    return NewMemEnv();
  };
  schemes_["posix"] = [](const std::string& path,
                         UriParams*) -> Result<std::unique_ptr<Env>> {
    if (path.empty()) {
      return Status::InvalidArgument(
          "posix:// requires a root directory path");
    }
    return NewPosixEnv(path);
  };

  // ---- Built-in wrappers. ----
  wrappers_["compressed"] = [](Env* delegate, UriParams* params)
      -> Result<std::unique_ptr<Env>> {
    // The XOR codec has no tunable levels yet; the parameter is validated
    // and reserved so URIs stay forward-compatible.
    TPCP_ASSIGN_OR_RETURN(const int64_t level, params->GetInt("level", 1));
    if (level < 1 || level > 9) {
      return Status::InvalidArgument("compressed level must be in [1, 9]");
    }
    return std::unique_ptr<Env>(std::make_unique<CompressedEnv>(delegate));
  };
  wrappers_["throttled"] = [](Env* delegate, UriParams* params)
      -> Result<std::unique_ptr<Env>> {
    TPCP_ASSIGN_OR_RETURN(const double mbps, params->GetDouble("mbps", 50.0));
    TPCP_ASSIGN_OR_RETURN(const double latency_ms,
                          params->GetDouble("latency_ms", 0.0));
    if (mbps <= 0.0) {
      return Status::InvalidArgument("throttled mbps must be > 0");
    }
    if (latency_ms < 0.0) {
      return Status::InvalidArgument("throttled latency_ms must be >= 0");
    }
    return std::unique_ptr<Env>(
        std::make_unique<ThrottledEnv>(delegate, mbps, latency_ms));
  };
  wrappers_["faulty"] = [](Env* delegate, UriParams* params)
      -> Result<std::unique_ptr<Env>> {
    TPCP_ASSIGN_OR_RETURN(const int64_t fail_reads,
                          params->GetInt("fail_reads_after", -1));
    TPCP_ASSIGN_OR_RETURN(const int64_t fail_writes,
                          params->GetInt("fail_writes_after", -1));
    TPCP_ASSIGN_OR_RETURN(const int64_t transient_reads,
                          params->GetInt("transient_read_every", 0));
    TPCP_ASSIGN_OR_RETURN(const int64_t transient_writes,
                          params->GetInt("transient_write_every", 0));
    if (transient_reads == 1 || transient_writes == 1) {
      return Status::InvalidArgument(
          "faulty transient_*_every must be >= 2 (1 would fail every "
          "attempt, i.e. permanently)");
    }
    auto env = std::make_unique<FaultyEnv>(delegate);
    if (fail_reads >= 0) env->FailReadsAfter(fail_reads);
    if (fail_writes >= 0) env->FailWritesAfter(fail_writes);
    if (transient_reads >= 2) env->TransientReadFaultEvery(transient_reads);
    if (transient_writes >= 2) env->TransientWriteFaultEvery(transient_writes);
    return std::unique_ptr<Env>(std::move(env));
  };
  wrappers_["retry"] = [](Env* delegate, UriParams* params)
      -> Result<std::unique_ptr<Env>> {
    RetryPolicy policy;
    TPCP_ASSIGN_OR_RETURN(const int64_t attempts,
                          params->GetInt("attempts", policy.max_attempts));
    TPCP_ASSIGN_OR_RETURN(
        const int64_t backoff_ms,
        params->GetInt("backoff_ms", policy.initial_backoff_ms));
    TPCP_ASSIGN_OR_RETURN(
        const int64_t max_backoff_ms,
        params->GetInt("max_backoff_ms", policy.max_backoff_ms));
    if (attempts < 1) {
      return Status::InvalidArgument("retry attempts must be >= 1");
    }
    if (backoff_ms < 0 || max_backoff_ms < 0) {
      return Status::InvalidArgument("retry backoff must be >= 0 ms");
    }
    policy.max_attempts = static_cast<int>(attempts);
    policy.initial_backoff_ms = backoff_ms;
    policy.max_backoff_ms = max_backoff_ms;
    return std::unique_ptr<Env>(
        std::make_unique<RetryEnv>(delegate, policy));
  };
}

EnvFactoryRegistry& EnvFactoryRegistry::Global() {
  static EnvFactoryRegistry* registry = new EnvFactoryRegistry();
  return *registry;
}

void EnvFactoryRegistry::RegisterScheme(const std::string& scheme,
                                        SchemeFactory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  schemes_[scheme] = std::move(factory);
}

void EnvFactoryRegistry::RegisterWrapper(const std::string& name,
                                         WrapperFactory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  wrappers_[name] = std::move(factory);
}

Result<OpenedEnv> EnvFactoryRegistry::Open(const std::string& uri) const {
  TPCP_ASSIGN_OR_RETURN(const ParsedEnvUri parsed, ParseEnvUri(uri));

  SchemeFactory scheme_factory;
  std::vector<WrapperFactory> wrapper_factories;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto scheme_it = schemes_.find(parsed.scheme);
    if (scheme_it == schemes_.end()) {
      std::vector<std::string> known;
      for (const auto& [name, factory] : schemes_) known.push_back(name);
      return Status::InvalidArgument(
          "unknown storage scheme '" + parsed.scheme + "' in '" + uri +
          "' (registered: " + Join(known, ", ") + ")");
    }
    scheme_factory = scheme_it->second;
    for (const std::string& name : parsed.wrappers) {
      const auto it = wrappers_.find(name);
      if (it == wrappers_.end()) {
        std::vector<std::string> known;
        for (const auto& [wname, factory] : wrappers_) known.push_back(wname);
        return Status::InvalidArgument(
            "unknown storage wrapper '" + name + "' in '" + uri +
            "' (registered: " + Join(known, ", ") + ")");
      }
      wrapper_factories.push_back(it->second);
    }
  }

  UriParams params(parsed.query);
  OpenedEnv opened;
  TPCP_ASSIGN_OR_RETURN(std::unique_ptr<Env> base,
                        scheme_factory(parsed.path, &params));
  opened.layers_.push_back(std::move(base));
  // Innermost wrapper (rightmost in the URI) is applied first.
  for (auto it = wrapper_factories.rbegin(); it != wrapper_factories.rend();
       ++it) {
    TPCP_ASSIGN_OR_RETURN(std::unique_ptr<Env> layer,
                          (*it)(opened.layers_.back().get(), &params));
    opened.layers_.push_back(std::move(layer));
  }

  const std::vector<std::string> leftover = params.UnconsumedKeys();
  if (!leftover.empty()) {
    return Status::InvalidArgument("unknown parameter(s) in '" + uri +
                                   "': " + Join(leftover, ", "));
  }
  return opened;
}

std::vector<std::string> EnvFactoryRegistry::Schemes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, factory] : schemes_) out.push_back(name);
  return out;
}

std::vector<std::string> EnvFactoryRegistry::Wrappers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, factory] : wrappers_) out.push_back(name);
  return out;
}

Result<OpenedEnv> OpenEnv(const std::string& uri) {
  return EnvFactoryRegistry::Global().Open(uri);
}

}  // namespace tpcp
