#include "storage/crc32.h"

namespace tpcp {
namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xedb88320u : 0u);
      }
      entries[i] = crc;
    }
  }
};

const Crc32Table& Table() {
  static const Crc32Table table;
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ Table().entries[(crc ^ bytes[i]) & 0xffu];
  }
  return ~crc;
}

}  // namespace tpcp
