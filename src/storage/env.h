// Environment abstraction over persistent storage (RocksDB-style Env).
//
// 2PCP's out-of-core structures (block tensors, block factors, buffer pool
// spill files) talk to an Env rather than to the filesystem directly, so
// tests can run against an in-memory Env and failure-injection wrappers.
//
// Files are read and written whole: the unit of I/O in this system is a
// serialized block or data unit, never a byte range.

#ifndef TPCP_STORAGE_ENV_H_
#define TPCP_STORAGE_ENV_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/io_stats.h"
#include "util/status.h"

namespace tpcp {

/// Abstract storage environment. Thread-safe.
class Env {
 public:
  virtual ~Env() = default;

  /// Writes (creating or replacing) the file `name` with `data`.
  virtual Status WriteFile(const std::string& name,
                           const std::string& data) = 0;

  /// Reads the whole file into *out. NotFound if absent.
  virtual Status ReadFile(const std::string& name, std::string* out) = 0;

  /// True if the file exists.
  virtual bool FileExists(const std::string& name) = 0;

  /// Removes the file. NotFound if absent.
  virtual Status DeleteFile(const std::string& name) = 0;

  /// Size in bytes. NotFound if absent.
  virtual Result<uint64_t> FileSize(const std::string& name) = 0;

  /// Names of all files whose name starts with `prefix`.
  virtual std::vector<std::string> ListFiles(const std::string& prefix) = 0;

  /// Cumulative I/O counters for this environment.
  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }

 protected:
  IoStats stats_;
};

/// Fully in-memory Env for tests and swap simulation.
std::unique_ptr<Env> NewMemEnv();

/// Filesystem-backed Env rooted at `root_dir` (created if missing; file
/// names may contain '/' which become subdirectories).
std::unique_ptr<Env> NewPosixEnv(const std::string& root_dir);

}  // namespace tpcp

#endif  // TPCP_STORAGE_ENV_H_
