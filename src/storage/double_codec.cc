#include "storage/double_codec.h"

#include <cstring>
#include <vector>

namespace tpcp {
namespace {

class BitWriter {
 public:
  void WriteBit(uint32_t bit) {
    if (bit_pos_ == 0) bytes_.push_back(0);
    if (bit) bytes_.back() |= static_cast<char>(1u << (7 - bit_pos_));
    bit_pos_ = (bit_pos_ + 1) % 8;
  }

  void WriteBits(uint64_t value, int count) {
    for (int i = count - 1; i >= 0; --i) WriteBit((value >> i) & 1u);
  }

  std::string Take() { return std::move(bytes_); }

 private:
  std::string bytes_;
  int bit_pos_ = 0;
};

class BitReader {
 public:
  BitReader(const char* data, size_t size) : data_(data), size_(size) {}

  bool ReadBit(uint32_t* bit) {
    const size_t byte = pos_ / 8;
    if (byte >= size_) return false;
    *bit = (static_cast<uint8_t>(data_[byte]) >> (7 - pos_ % 8)) & 1u;
    ++pos_;
    return true;
  }

  bool ReadBits(int count, uint64_t* value) {
    *value = 0;
    for (int i = 0; i < count; ++i) {
      uint32_t bit = 0;
      if (!ReadBit(&bit)) return false;
      *value = (*value << 1) | bit;
    }
    return true;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

int CountLeadingZeros(uint64_t v) {
  return v == 0 ? 64 : __builtin_clzll(v);
}

int CountTrailingZeros(uint64_t v) {
  return v == 0 ? 64 : __builtin_ctzll(v);
}

}  // namespace

std::string CompressDoubles(const double* values, size_t count) {
  std::string header(sizeof(uint64_t), '\0');
  const uint64_t count64 = count;
  std::memcpy(header.data(), &count64, sizeof(uint64_t));
  if (count == 0) return header;

  BitWriter writer;
  uint64_t prev = 0;
  std::memcpy(&prev, &values[0], sizeof(double));
  writer.WriteBits(prev, 64);  // first value verbatim

  int window_leading = -1;
  int window_length = 0;
  for (size_t i = 1; i < count; ++i) {
    uint64_t cur = 0;
    std::memcpy(&cur, &values[i], sizeof(double));
    const uint64_t x = cur ^ prev;
    prev = cur;
    if (x == 0) {
      writer.WriteBit(0);
      continue;
    }
    int leading = CountLeadingZeros(x);
    if (leading > 31) leading = 31;  // 5-bit-friendly cap, keeps windows sane
    const int trailing = CountTrailingZeros(x);
    const int length = 64 - leading - trailing;
    writer.WriteBit(1);
    if (window_leading >= 0 && leading >= window_leading &&
        leading + length <= window_leading + window_length) {
      // Fits the open window: control bit 0 + significant bits at the
      // window's position.
      writer.WriteBit(0);
      writer.WriteBits(x >> (64 - window_leading - window_length),
                       window_length);
    } else {
      writer.WriteBit(1);
      window_leading = leading;
      window_length = length;
      writer.WriteBits(static_cast<uint64_t>(leading), 6);
      writer.WriteBits(static_cast<uint64_t>(length - 1), 6);
      writer.WriteBits(x >> trailing, length);
    }
  }
  return header + writer.Take();
}

Result<std::vector<double>> DecompressDoubles(const std::string& bytes) {
  if (bytes.size() < sizeof(uint64_t)) {
    return Status::Corruption("double codec: missing header");
  }
  uint64_t count = 0;
  std::memcpy(&count, bytes.data(), sizeof(uint64_t));
  std::vector<double> out;
  if (count == 0) return out;
  if (count > (uint64_t{1} << 40)) {
    return Status::Corruption("double codec: implausible count");
  }
  out.reserve(static_cast<size_t>(count));

  BitReader reader(bytes.data() + sizeof(uint64_t),
                   bytes.size() - sizeof(uint64_t));
  uint64_t prev = 0;
  if (!reader.ReadBits(64, &prev)) {
    return Status::Corruption("double codec: truncated first value");
  }
  double value = 0.0;
  std::memcpy(&value, &prev, sizeof(double));
  out.push_back(value);

  int window_leading = -1;
  int window_length = 0;
  while (out.size() < count) {
    uint32_t changed = 0;
    if (!reader.ReadBit(&changed)) {
      return Status::Corruption("double codec: truncated stream");
    }
    uint64_t x = 0;
    if (changed) {
      uint32_t new_window = 0;
      if (!reader.ReadBit(&new_window)) {
        return Status::Corruption("double codec: truncated control bit");
      }
      if (new_window) {
        uint64_t leading = 0, length_minus_1 = 0, bits = 0;
        if (!reader.ReadBits(6, &leading) ||
            !reader.ReadBits(6, &length_minus_1) ||
            !reader.ReadBits(static_cast<int>(length_minus_1) + 1, &bits)) {
          return Status::Corruption("double codec: truncated window");
        }
        window_leading = static_cast<int>(leading);
        window_length = static_cast<int>(length_minus_1) + 1;
        if (window_leading + window_length > 64) {
          return Status::Corruption("double codec: bad window");
        }
        x = bits << (64 - window_leading - window_length);
      } else {
        if (window_leading < 0) {
          return Status::Corruption("double codec: reuse before window");
        }
        uint64_t bits = 0;
        if (!reader.ReadBits(window_length, &bits)) {
          return Status::Corruption("double codec: truncated bits");
        }
        x = bits << (64 - window_leading - window_length);
      }
    }
    prev ^= x;
    std::memcpy(&value, &prev, sizeof(double));
    out.push_back(value);
  }
  return out;
}

}  // namespace tpcp
