// Byte- and operation-level I/O accounting, shared by every Env.
//
// The paper's evaluation counts "data swaps" between disk and the memory
// buffer; IoStats is the raw substrate those counters are derived from.

#ifndef TPCP_STORAGE_IO_STATS_H_
#define TPCP_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace tpcp {

/// Thread-safe cumulative I/O counters.
class IoStats {
 public:
  void RecordRead(uint64_t bytes) {
    reads_.fetch_add(1, std::memory_order_relaxed);
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void RecordWrite(uint64_t bytes) {
    writes_.fetch_add(1, std::memory_order_relaxed);
    bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
  }

  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t writes() const { return writes_.load(std::memory_order_relaxed); }
  uint64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }

  void Reset() {
    reads_ = 0;
    writes_ = 0;
    bytes_read_ = 0;
    bytes_written_ = 0;
  }

  /// "reads=3 (24.0 KiB) writes=1 (8.0 KiB)".
  std::string ToString() const;

 private:
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
};

}  // namespace tpcp

#endif  // TPCP_STORAGE_IO_STATS_H_
