// Failure-injection Env wrapper for exercising error paths in tests.

#ifndef TPCP_STORAGE_FAULTY_ENV_H_
#define TPCP_STORAGE_FAULTY_ENV_H_

#include <memory>
#include <mutex>

#include "storage/env.h"

namespace tpcp {

/// Wraps a delegate Env and injects configurable faults. Thread-safe when
/// the delegate is (the async Phase-2 path reads through it from worker
/// threads); the countdowns tick once per operation in arrival order.
class FaultyEnv : public Env {
 public:
  explicit FaultyEnv(Env* delegate) : delegate_(delegate) {}

  /// After `n` more successful writes, every write fails with IOError
  /// (simulating a full disk). Negative disables.
  void FailWritesAfter(int64_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    writes_until_failure_ = n;
  }

  /// After `n` more successful reads, every read fails with IOError.
  void FailReadsAfter(int64_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    reads_until_failure_ = n;
  }

  /// Every `n`-th write fails once with a *transient* IOError — the same
  /// write retried immediately succeeds (the counter keeps ticking). Models
  /// a flaky disk rather than a full one; pair with a retrying Env wrapper.
  /// n < 2 disables (n == 1 would fail every attempt, i.e. permanently).
  void TransientWriteFaultEvery(int64_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    transient_write_every_ = n >= 2 ? n : 0;
  }

  /// Every `n`-th read fails once with a transient IOError; see above.
  void TransientReadFaultEvery(int64_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    transient_read_every_ = n >= 2 ? n : 0;
  }

  /// Flip one byte in every subsequent read result (checksum tests).
  void CorruptReads(bool enabled) {
    std::lock_guard<std::mutex> lock(mu_);
    corrupt_reads_ = enabled;
  }

  /// Truncate every subsequent read result to half its size (short reads).
  void TruncateReads(bool enabled) {
    std::lock_guard<std::mutex> lock(mu_);
    truncate_reads_ = enabled;
  }

  Status WriteFile(const std::string& name, const std::string& data) override;
  Status ReadFile(const std::string& name, std::string* out) override;
  bool FileExists(const std::string& name) override;
  Status DeleteFile(const std::string& name) override;
  Result<uint64_t> FileSize(const std::string& name) override;
  std::vector<std::string> ListFiles(const std::string& prefix) override;

 private:
  Env* delegate_;
  std::mutex mu_;
  int64_t writes_until_failure_ = -1;
  int64_t reads_until_failure_ = -1;
  int64_t transient_write_every_ = 0;
  int64_t transient_read_every_ = 0;
  int64_t write_op_counter_ = 0;
  int64_t read_op_counter_ = 0;
  bool corrupt_reads_ = false;
  bool truncate_reads_ = false;
};

}  // namespace tpcp

#endif  // TPCP_STORAGE_FAULTY_ENV_H_
