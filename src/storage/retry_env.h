// Env wrapper that absorbs transient I/O faults with the shared retry
// policy (util/retry.h). A flaky-but-recoverable disk (FaultyEnv's
// transient modes, a briefly saturated network mount) looks healthy to the
// code above it; permanent failures (NotFound, Corruption, a disk that
// stays broken past the attempt budget) still surface unchanged.

#ifndef TPCP_STORAGE_RETRY_ENV_H_
#define TPCP_STORAGE_RETRY_ENV_H_

#include <memory>

#include "storage/env.h"
#include "util/retry.h"

namespace tpcp {

/// Retrying pass-through wrapper. Thread-safe when the delegate is; each
/// operation retries independently with its own backoff sequence.
class RetryEnv : public Env {
 public:
  RetryEnv(Env* delegate, RetryPolicy policy)
      : delegate_(delegate), policy_(policy) {}

  Status WriteFile(const std::string& name, const std::string& data) override;
  Status ReadFile(const std::string& name, std::string* out) override;
  bool FileExists(const std::string& name) override;
  Status DeleteFile(const std::string& name) override;
  Result<uint64_t> FileSize(const std::string& name) override;
  std::vector<std::string> ListFiles(const std::string& prefix) override;

 private:
  Env* delegate_;
  RetryPolicy policy_;
};

/// Owning variant for the URI factory ("retry+posix://...").
std::unique_ptr<Env> NewRetryEnv(std::unique_ptr<Env> delegate,
                                 RetryPolicy policy);

}  // namespace tpcp

#endif  // TPCP_STORAGE_RETRY_ENV_H_
