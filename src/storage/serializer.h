// Checksummed binary serialization of matrices and dense tensors.
//
// Record layout (little-endian host assumed, documented for the on-disk
// format):
//   [magic u32][kind u8][ndims u32][dims i64 * ndims][payload f64 * n]
//   [crc32 u32 over everything before it]

#ifndef TPCP_STORAGE_SERIALIZER_H_
#define TPCP_STORAGE_SERIALIZER_H_

#include <string>

#include "linalg/matrix.h"
#include "storage/env.h"
#include "tensor/dense_tensor.h"
#include "util/status.h"

namespace tpcp {

/// Encodes a matrix to its on-disk byte representation.
std::string SerializeMatrix(const Matrix& m);

/// Decodes a matrix; Corruption on checksum/format mismatch.
Result<Matrix> DeserializeMatrix(const std::string& bytes);

/// Encodes a dense tensor.
std::string SerializeTensor(const DenseTensor& t);

/// Decodes a dense tensor; Corruption on checksum/format mismatch.
Result<DenseTensor> DeserializeTensor(const std::string& bytes);

/// Convenience wrappers writing/reading through an Env.
Status WriteMatrix(Env* env, const std::string& name, const Matrix& m);
Result<Matrix> ReadMatrix(Env* env, const std::string& name);
Status WriteTensor(Env* env, const std::string& name, const DenseTensor& t);
Result<DenseTensor> ReadTensor(Env* env, const std::string& name);

}  // namespace tpcp

#endif  // TPCP_STORAGE_SERIALIZER_H_
