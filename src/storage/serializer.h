// Checksummed binary serialization of matrices and tensors.
//
// Record layout (little-endian host assumed, documented for the on-disk
// format):
//   [magic u32][kind u8][ndims u32][dims i64 * ndims][payload]
//   [crc32 u32 over everything before it]
//
// Kinds and payloads:
//   1 matrix       payload = rows*cols f64
//   2 dense tensor payload = NumElements f64
//   3 sparse COO   payload = nnz i64, nnz*ndims i64 coords (entry-major,
//                  stored order), nnz f64 values
//   4 sparse CSF   payload = nnz i64; per level: num_nodes i64; per level:
//                  idx array as zigzag-varint deltas (vs the previous
//                  element, first vs 0); per non-leaf level: ptr array
//                  (num_nodes+1 monotone offsets) as unsigned-varint
//                  deltas; nnz f64 values. The delta+varint coding is what
//                  makes the sorted fiber hierarchy pay: within a fiber
//                  run the leaf deltas are tiny and most index words
//                  shrink to one byte.

#ifndef TPCP_STORAGE_SERIALIZER_H_
#define TPCP_STORAGE_SERIALIZER_H_

#include <string>

#include "linalg/matrix.h"
#include "storage/env.h"
#include "tensor/csf_tensor.h"
#include "tensor/dense_tensor.h"
#include "tensor/sparse_tensor.h"
#include "util/status.h"

namespace tpcp {

/// Encodes a matrix to its on-disk byte representation.
std::string SerializeMatrix(const Matrix& m);

/// Decodes a matrix; Corruption on checksum/format mismatch.
Result<Matrix> DeserializeMatrix(const std::string& bytes);

/// Encodes a dense tensor.
std::string SerializeTensor(const DenseTensor& t);

/// Decodes a dense tensor; Corruption on checksum/format mismatch.
Result<DenseTensor> DeserializeTensor(const std::string& bytes);

/// Encodes a sparse COO tensor (kind 3), entries in stored order.
std::string SerializeSparseCoo(const SparseTensor& t);

/// Encodes a CSF tensor (kind 4) with delta-varint index compression.
std::string SerializeSparseCsf(const CsfTensor& t);

/// Decodes either sparse kind (3 or 4) to COO; a CSF record expands in
/// lexicographic order. Corruption on checksum/format mismatch.
Result<SparseTensor> DeserializeSparse(const std::string& bytes);

/// Decodes a CSF record (kind 4) without expanding the hierarchy.
Result<CsfTensor> DeserializeSparseCsf(const std::string& bytes);

/// Decodes any tensor record — dense (2), COO (3), or CSF (4) — to a
/// dense tensor. The auto-detecting read path: callers need not know a
/// block's slab format.
Result<DenseTensor> DeserializeTensorAny(const std::string& bytes);

/// Record kind byte of a well-formed record (crc + magic checked).
Result<uint8_t> PeekRecordKind(const std::string& bytes);

/// Convenience wrappers writing/reading through an Env.
Status WriteMatrix(Env* env, const std::string& name, const Matrix& m);
Result<Matrix> ReadMatrix(Env* env, const std::string& name);
Status WriteTensor(Env* env, const std::string& name, const DenseTensor& t);
Result<DenseTensor> ReadTensor(Env* env, const std::string& name);
Status WriteSparseCoo(Env* env, const std::string& name,
                      const SparseTensor& t);
Status WriteSparseCsf(Env* env, const std::string& name, const CsfTensor& t);
Result<SparseTensor> ReadSparse(Env* env, const std::string& name);
Result<DenseTensor> ReadTensorAny(Env* env, const std::string& name);

}  // namespace tpcp

#endif  // TPCP_STORAGE_SERIALIZER_H_
