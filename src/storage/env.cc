#include "storage/env.h"

#include "util/format.h"

namespace tpcp {

std::string IoStats::ToString() const {
  return "reads=" + std::to_string(reads()) + " (" + HumanBytes(bytes_read()) +
         ") writes=" + std::to_string(writes()) + " (" +
         HumanBytes(bytes_written()) + ")";
}

}  // namespace tpcp
