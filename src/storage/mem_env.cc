#include <map>
#include <mutex>

#include "storage/env.h"

namespace tpcp {
namespace {

class MemEnv : public Env {
 public:
  Status WriteFile(const std::string& name, const std::string& data) override {
    std::lock_guard<std::mutex> lock(mu_);
    files_[name] = data;
    stats_.RecordWrite(data.size());
    return Status::OK();
  }

  Status ReadFile(const std::string& name, std::string* out) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(name);
    if (it == files_.end()) {
      return Status::NotFound("no such file: " + name);
    }
    *out = it->second;
    stats_.RecordRead(out->size());
    return Status::OK();
  }

  bool FileExists(const std::string& name) override {
    std::lock_guard<std::mutex> lock(mu_);
    return files_.count(name) > 0;
  }

  Status DeleteFile(const std::string& name) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (files_.erase(name) == 0) {
      return Status::NotFound("no such file: " + name);
    }
    return Status::OK();
  }

  Result<uint64_t> FileSize(const std::string& name) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(name);
    if (it == files_.end()) {
      return Status::NotFound("no such file: " + name);
    }
    return static_cast<uint64_t>(it->second.size());
  }

  std::vector<std::string> ListFiles(const std::string& prefix) override {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    for (auto it = files_.lower_bound(prefix);
         it != files_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
         ++it) {
      out.push_back(it->first);
    }
    return out;
  }

 private:
  std::mutex mu_;
  std::map<std::string, std::string> files_;
};

}  // namespace

std::unique_ptr<Env> NewMemEnv() { return std::make_unique<MemEnv>(); }

}  // namespace tpcp
