// Env wrapper that models a storage device with finite throughput and
// per-operation latency.
//
// The paper's weak configuration (Table II) runs on a desktop whose disk
// makes a block swap cost ~3x the in-memory work on that block (Section
// VIII footnote). This environment has no comparable disk, so ThrottledEnv
// re-introduces the cost by sleeping `latency + bytes / throughput` on
// every read and write — a documented substitution (DESIGN.md), calibrated
// per bench.

#ifndef TPCP_STORAGE_THROTTLED_ENV_H_
#define TPCP_STORAGE_THROTTLED_ENV_H_

#include <atomic>

#include "storage/env.h"

namespace tpcp {

/// Delegating Env that charges wall-clock time for data movement.
/// Thread-safe when the delegate is (concurrent operations each sleep on
/// their own thread, as independent disk queues would).
class ThrottledEnv : public Env {
 public:
  /// `throughput_mb_per_sec` > 0; `latency_ms` >= 0 charged per operation.
  ThrottledEnv(Env* delegate, double throughput_mb_per_sec,
               double latency_ms);

  Status WriteFile(const std::string& name, const std::string& data) override;
  Status ReadFile(const std::string& name, std::string* out) override;
  bool FileExists(const std::string& name) override;
  Status DeleteFile(const std::string& name) override;
  Result<uint64_t> FileSize(const std::string& name) override;
  std::vector<std::string> ListFiles(const std::string& prefix) override;

  /// Total wall-clock seconds spent throttling so far (summed across
  /// threads; concurrent sleeps both count).
  double throttled_seconds() const {
    return static_cast<double>(throttled_nanos_.load()) / 1e9;
  }

 private:
  void Charge(uint64_t bytes);

  Env* delegate_;
  double bytes_per_second_;
  double latency_seconds_;
  std::atomic<uint64_t> throttled_nanos_{0};
};

}  // namespace tpcp

#endif  // TPCP_STORAGE_THROTTLED_ENV_H_
