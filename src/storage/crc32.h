// CRC-32 (IEEE 802.3 polynomial) for on-disk block integrity checks.

#ifndef TPCP_STORAGE_CRC32_H_
#define TPCP_STORAGE_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace tpcp {

/// Incremental CRC-32; pass the previous value to continue a running
/// checksum, or omit it to start fresh.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

}  // namespace tpcp

#endif  // TPCP_STORAGE_CRC32_H_
