#include "storage/compressed_env.h"

#include <cstring>

#include "storage/double_codec.h"

namespace tpcp {
namespace {

// Stored layout: [u32 tail_len][tail bytes][compressed 64-bit words].

std::string Compress(const std::string& data) {
  const size_t words = data.size() / sizeof(double);
  const uint32_t tail_len = static_cast<uint32_t>(data.size() % sizeof(double));
  std::string out(sizeof(uint32_t), '\0');
  std::memcpy(out.data(), &tail_len, sizeof(uint32_t));
  out.append(data.data() + words * sizeof(double), tail_len);
  // Reinterpret the word payload as doubles; the codec only moves bits.
  std::vector<double> values(words);
  if (words > 0) {
    std::memcpy(values.data(), data.data(), words * sizeof(double));
  }
  out += CompressDoubles(values.data(), words);
  return out;
}

Result<std::string> Decompress(const std::string& stored) {
  if (stored.size() < sizeof(uint32_t)) {
    return Status::Corruption("compressed file: missing header");
  }
  uint32_t tail_len = 0;
  std::memcpy(&tail_len, stored.data(), sizeof(uint32_t));
  if (tail_len >= sizeof(double) ||
      stored.size() < sizeof(uint32_t) + tail_len) {
    return Status::Corruption("compressed file: bad tail");
  }
  const std::string payload = stored.substr(sizeof(uint32_t) + tail_len);
  TPCP_ASSIGN_OR_RETURN(std::vector<double> values,
                        DecompressDoubles(payload));
  std::string out(values.size() * sizeof(double) + tail_len, '\0');
  if (!values.empty()) {
    std::memcpy(out.data(), values.data(), values.size() * sizeof(double));
  }
  std::memcpy(out.data() + values.size() * sizeof(double),
              stored.data() + sizeof(uint32_t), tail_len);
  return out;
}

}  // namespace

Status CompressedEnv::WriteFile(const std::string& name,
                                const std::string& data) {
  const std::string stored = Compress(data);
  TPCP_RETURN_IF_ERROR(delegate_->WriteFile(name, stored));
  logical_written_ += data.size();
  stored_written_ += stored.size();
  stats_.RecordWrite(data.size());
  return Status::OK();
}

Status CompressedEnv::ReadFile(const std::string& name, std::string* out) {
  std::string stored;
  TPCP_RETURN_IF_ERROR(delegate_->ReadFile(name, &stored));
  TPCP_ASSIGN_OR_RETURN(*out, Decompress(stored));
  stats_.RecordRead(out->size());
  return Status::OK();
}

bool CompressedEnv::FileExists(const std::string& name) {
  return delegate_->FileExists(name);
}

Status CompressedEnv::DeleteFile(const std::string& name) {
  return delegate_->DeleteFile(name);
}

Result<uint64_t> CompressedEnv::FileSize(const std::string& name) {
  std::string out;
  TPCP_RETURN_IF_ERROR(ReadFile(name, &out));
  return static_cast<uint64_t>(out.size());
}

std::vector<std::string> CompressedEnv::ListFiles(const std::string& prefix) {
  return delegate_->ListFiles(prefix);
}

}  // namespace tpcp
