#include "storage/retry_env.h"

#include <utility>

namespace tpcp {

Status RetryEnv::WriteFile(const std::string& name, const std::string& data) {
  return RetryWithBackoff(policy_, "write " + name,
                          [&] { return delegate_->WriteFile(name, data); });
}

Status RetryEnv::ReadFile(const std::string& name, std::string* out) {
  return RetryWithBackoff(policy_, "read " + name, [&] {
    out->clear();
    return delegate_->ReadFile(name, out);
  });
}

bool RetryEnv::FileExists(const std::string& name) {
  return delegate_->FileExists(name);
}

Status RetryEnv::DeleteFile(const std::string& name) {
  return RetryWithBackoff(policy_, "delete " + name,
                          [&] { return delegate_->DeleteFile(name); });
}

Result<uint64_t> RetryEnv::FileSize(const std::string& name) {
  Result<uint64_t> result = delegate_->FileSize(name);
  if (result.ok() || !IsTransientStatus(result.status())) return result;
  const Status status = RetryWithBackoff(policy_, "stat " + name, [&] {
    result = delegate_->FileSize(name);
    return result.ok() ? Status::OK() : result.status();
  });
  if (!status.ok()) return status;
  return result;
}

std::vector<std::string> RetryEnv::ListFiles(const std::string& prefix) {
  return delegate_->ListFiles(prefix);
}

namespace {

/// RetryEnv plus ownership of the wrapped delegate.
class OwningRetryEnv : public RetryEnv {
 public:
  OwningRetryEnv(std::unique_ptr<Env> delegate, RetryPolicy policy)
      : RetryEnv(delegate.get(), policy), owned_(std::move(delegate)) {}

 private:
  std::unique_ptr<Env> owned_;
};

}  // namespace

std::unique_ptr<Env> NewRetryEnv(std::unique_ptr<Env> delegate,
                                 RetryPolicy policy) {
  return std::make_unique<OwningRetryEnv>(std::move(delegate), policy);
}

}  // namespace tpcp
