#include "storage/overlay_env.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace tpcp {
namespace {

class OverlayEnv : public Env {
 public:
  explicit OverlayEnv(Env* base) : base_(base) {}

  Status WriteFile(const std::string& name, const std::string& data) override {
    std::lock_guard<std::mutex> lock(mu_);
    files_[name] = data;
    deleted_.erase(name);
    stats_.RecordWrite(data.size());
    return Status::OK();
  }

  Status ReadFile(const std::string& name, std::string* out) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (deleted_.count(name) > 0) {
        return Status::NotFound("overlay: deleted file: " + name);
      }
      auto it = files_.find(name);
      if (it != files_.end()) {
        *out = it->second;
        stats_.RecordRead(out->size());
        return Status::OK();
      }
    }
    return base_->ReadFile(name, out);
  }

  bool FileExists(const std::string& name) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (deleted_.count(name) > 0) return false;
      if (files_.count(name) > 0) return true;
    }
    return base_->FileExists(name);
  }

  Status DeleteFile(const std::string& name) override {
    std::lock_guard<std::mutex> lock(mu_);
    const bool in_overlay = files_.erase(name) > 0;
    const bool in_base = base_->FileExists(name);
    if (!in_overlay && (!in_base || deleted_.count(name) > 0)) {
      return Status::NotFound("overlay: no such file: " + name);
    }
    if (in_base) deleted_.insert(name);
    return Status::OK();
  }

  Result<uint64_t> FileSize(const std::string& name) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (deleted_.count(name) > 0) {
        return Status::NotFound("overlay: deleted file: " + name);
      }
      auto it = files_.find(name);
      if (it != files_.end()) {
        return static_cast<uint64_t>(it->second.size());
      }
    }
    return base_->FileSize(name);
  }

  std::vector<std::string> ListFiles(const std::string& prefix) override {
    std::set<std::string> names;
    for (const std::string& name : base_->ListFiles(prefix)) {
      names.insert(name);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& entry : files_) {
        if (entry.first.compare(0, prefix.size(), prefix) == 0) {
          names.insert(entry.first);
        }
      }
      for (const std::string& name : deleted_) {
        names.erase(name);
      }
    }
    return std::vector<std::string>(names.begin(), names.end());
  }

 private:
  Env* const base_;
  std::mutex mu_;
  std::map<std::string, std::string> files_;
  std::set<std::string> deleted_;
};

}  // namespace

std::unique_ptr<Env> NewOverlayEnv(Env* base) {
  return std::make_unique<OverlayEnv>(base);
}

}  // namespace tpcp
