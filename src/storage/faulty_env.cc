#include "storage/faulty_env.h"

namespace tpcp {

Status FaultyEnv::WriteFile(const std::string& name, const std::string& data) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (writes_until_failure_ == 0) {
      return Status::IOError("injected write failure: " + name);
    }
    if (writes_until_failure_ > 0) --writes_until_failure_;
    // Transient fault: every n-th attempt fails, so the immediate retry of
    // the same write (attempt n+1) goes through.
    ++write_op_counter_;
    if (transient_write_every_ > 0 &&
        write_op_counter_ % transient_write_every_ == 0) {
      return Status::IOError("injected transient write fault: " + name);
    }
  }
  return delegate_->WriteFile(name, data);
}

Status FaultyEnv::ReadFile(const std::string& name, std::string* out) {
  bool corrupt;
  bool truncate;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (reads_until_failure_ == 0) {
      return Status::IOError("injected read failure: " + name);
    }
    if (reads_until_failure_ > 0) --reads_until_failure_;
    ++read_op_counter_;
    if (transient_read_every_ > 0 &&
        read_op_counter_ % transient_read_every_ == 0) {
      return Status::IOError("injected transient read fault: " + name);
    }
    corrupt = corrupt_reads_;
    truncate = truncate_reads_;
  }
  TPCP_RETURN_IF_ERROR(delegate_->ReadFile(name, out));
  if (corrupt && !out->empty()) {
    (*out)[out->size() / 2] = static_cast<char>((*out)[out->size() / 2] ^ 0x5a);
  }
  if (truncate) out->resize(out->size() / 2);
  return Status::OK();
}

bool FaultyEnv::FileExists(const std::string& name) {
  return delegate_->FileExists(name);
}

Status FaultyEnv::DeleteFile(const std::string& name) {
  return delegate_->DeleteFile(name);
}

Result<uint64_t> FaultyEnv::FileSize(const std::string& name) {
  return delegate_->FileSize(name);
}

std::vector<std::string> FaultyEnv::ListFiles(const std::string& prefix) {
  return delegate_->ListFiles(prefix);
}

}  // namespace tpcp
