// Env wrapper that stores files compressed (double_codec.h).
//
// Files are treated as a stream of 64-bit words (the payloads this system
// writes are overwhelmingly double arrays) plus a verbatim tail. The
// wrapper is transparent: readers and writers see the logical bytes; only
// the delegate sees the compressed representation. Pairs naturally with
// ThrottledEnv to study the compression-vs-I/O trade the paper mentions in
// Section VIII-C.

#ifndef TPCP_STORAGE_COMPRESSED_ENV_H_
#define TPCP_STORAGE_COMPRESSED_ENV_H_

#include "storage/env.h"

namespace tpcp {

/// Transparent compression layer over another Env.
class CompressedEnv : public Env {
 public:
  explicit CompressedEnv(Env* delegate) : delegate_(delegate) {}

  Status WriteFile(const std::string& name, const std::string& data) override;
  Status ReadFile(const std::string& name, std::string* out) override;
  bool FileExists(const std::string& name) override;
  Status DeleteFile(const std::string& name) override;
  /// Logical (uncompressed) size, recovered from the stored header.
  Result<uint64_t> FileSize(const std::string& name) override;
  std::vector<std::string> ListFiles(const std::string& prefix) override;

  /// Cumulative bytes as seen by callers vs bytes actually stored.
  uint64_t logical_bytes_written() const { return logical_written_; }
  uint64_t stored_bytes_written() const { return stored_written_; }
  double CompressionRatio() const {
    return stored_written_ == 0
               ? 1.0
               : static_cast<double>(logical_written_) /
                     static_cast<double>(stored_written_);
  }

 private:
  Env* delegate_;
  uint64_t logical_written_ = 0;
  uint64_t stored_written_ = 0;
};

}  // namespace tpcp

#endif  // TPCP_STORAGE_COMPRESSED_ENV_H_
