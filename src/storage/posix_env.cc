#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>

#include "storage/env.h"

namespace tpcp {
namespace {

namespace fs = std::filesystem;

class PosixEnv : public Env {
 public:
  explicit PosixEnv(std::string root) : root_(std::move(root)) {
    std::error_code ec;
    fs::create_directories(root_, ec);
  }

  Status WriteFile(const std::string& name, const std::string& data) override {
    const fs::path path = Resolve(name);
    std::error_code ec;
    fs::create_directories(path.parent_path(), ec);
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      return Status::IOError("open for write failed: " + path.string() + ": " +
                             std::strerror(errno));
    }
    const size_t written = data.empty()
                               ? 0
                               : std::fwrite(data.data(), 1, data.size(), f);
    const int close_rc = std::fclose(f);
    if (written != data.size() || close_rc != 0) {
      return Status::IOError("short write: " + path.string());
    }
    stats_.RecordWrite(data.size());
    return Status::OK();
  }

  Status ReadFile(const std::string& name, std::string* out) override {
    const fs::path path = Resolve(name);
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      return Status::NotFound("no such file: " + path.string());
    }
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (size < 0) {
      std::fclose(f);
      return Status::IOError("ftell failed: " + path.string());
    }
    out->resize(static_cast<size_t>(size));
    const size_t read =
        size == 0 ? 0 : std::fread(out->data(), 1, out->size(), f);
    std::fclose(f);
    if (read != out->size()) {
      return Status::IOError("short read: " + path.string());
    }
    stats_.RecordRead(out->size());
    return Status::OK();
  }

  bool FileExists(const std::string& name) override {
    std::error_code ec;
    return fs::exists(Resolve(name), ec);
  }

  Status DeleteFile(const std::string& name) override {
    std::error_code ec;
    if (!fs::remove(Resolve(name), ec)) {
      return Status::NotFound("no such file: " + name);
    }
    return Status::OK();
  }

  Result<uint64_t> FileSize(const std::string& name) override {
    std::error_code ec;
    const auto size = fs::file_size(Resolve(name), ec);
    if (ec) return Status::NotFound("no such file: " + name);
    return static_cast<uint64_t>(size);
  }

  std::vector<std::string> ListFiles(const std::string& prefix) override {
    std::vector<std::string> out;
    std::error_code ec;
    for (auto it = fs::recursive_directory_iterator(root_, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file(ec)) continue;
      std::string rel =
          fs::relative(it->path(), root_, ec).generic_string();
      if (rel.compare(0, prefix.size(), prefix) == 0) {
        out.push_back(std::move(rel));
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  fs::path Resolve(const std::string& name) const {
    return fs::path(root_) / name;
  }

  std::string root_;
};

}  // namespace

std::unique_ptr<Env> NewPosixEnv(const std::string& root_dir) {
  return std::make_unique<PosixEnv>(root_dir);
}

}  // namespace tpcp
