// URI-addressed Env construction (the RocksDB Env::CreateFromUri idea).
//
// A storage URI names a base backend plus an optional chain of wrappers:
//
//   mem://                            in-memory Env
//   posix:///var/data/run1            filesystem Env rooted at the path
//   compressed+posix:///data?level=3  CompressedEnv over a PosixEnv
//   throttled+mem://?mbps=50          ThrottledEnv over a MemEnv
//   faulty+compressed+mem://          chains compose left-to-right,
//                                     leftmost outermost
//
// Query parameters configure any layer of the chain (the query is shared;
// each layer consumes the keys it understands, and unconsumed keys are an
// error). Backends and wrappers self-register in the EnvFactoryRegistry, so
// new storage layers plug in without touching call sites:
//
//   EnvFactoryRegistry::Global().RegisterScheme("s3", ...);
//   auto env = OpenEnv("compressed+s3://bucket/prefix");
//
// Every malformed URI — missing "://", empty or unknown scheme/wrapper,
// unparsable or unknown parameters — is rejected as InvalidArgument.

#ifndef TPCP_STORAGE_ENV_URI_H_
#define TPCP_STORAGE_ENV_URI_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "storage/env.h"
#include "util/status.h"

namespace tpcp {

/// Structured form of a storage URI.
struct ParsedEnvUri {
  /// Wrapper names, outermost first ("compressed+throttled+mem://" parses
  /// to {"compressed", "throttled"}).
  std::vector<std::string> wrappers;
  /// Base backend scheme ("mem", "posix").
  std::string scheme;
  /// Everything between "://" and '?'.
  std::string path;
  /// Decoded query parameters.
  std::map<std::string, std::string> query;
};

/// Splits a URI into wrappers/scheme/path/query. InvalidArgument on a
/// missing "://", an empty scheme or wrapper name, or a query term without
/// '=' / with an empty key. Does not check that the names are registered.
Result<ParsedEnvUri> ParseEnvUri(const std::string& uri);

/// Query-parameter accessor that records which keys were consumed, so the
/// registry can reject typoed or unknown parameters after the chain is
/// built. Typed getters propagate InvalidArgument from checked parsing.
class UriParams {
 public:
  explicit UriParams(std::map<std::string, std::string> query)
      : query_(std::move(query)) {}

  /// The raw value, marking the key consumed.
  std::optional<std::string> Get(const std::string& key);

  /// The value parsed as an integer / double, or `fallback` when absent.
  Result<int64_t> GetInt(const std::string& key, int64_t fallback);
  Result<double> GetDouble(const std::string& key, double fallback);

  /// Keys present in the query that no layer consumed.
  std::vector<std::string> UnconsumedKeys() const;

 private:
  std::map<std::string, std::string> query_;
  std::set<std::string> consumed_;
};

/// An Env opened from a URI, owning the whole wrapper chain. Move-only;
/// the Env* stays valid for the lifetime of this handle.
class OpenedEnv {
 public:
  OpenedEnv() = default;
  OpenedEnv(OpenedEnv&&) = default;
  OpenedEnv& operator=(OpenedEnv&&) = default;

  /// The outermost Env of the chain (nullptr for a default-constructed
  /// handle).
  Env* get() const { return layers_.empty() ? nullptr : layers_.back().get(); }
  Env* operator->() const { return get(); }
  Env& operator*() const { return *get(); }
  explicit operator bool() const { return !layers_.empty(); }

  /// The innermost (base) Env — e.g. the MemEnv under the wrappers.
  Env* base() const {
    return layers_.empty() ? nullptr : layers_.front().get();
  }

 private:
  friend class EnvFactoryRegistry;
  std::vector<std::unique_ptr<Env>> layers_;  // base first, outermost last
};

/// Registry of URI schemes and wrapper layers. Thread-safe.
class EnvFactoryRegistry {
 public:
  /// Creates a base Env from the URI's path.
  using SchemeFactory = std::function<Result<std::unique_ptr<Env>>(
      const std::string& path, UriParams* params)>;
  /// Wraps `delegate` (non-owning; the registry keeps the delegate alive in
  /// the returned OpenedEnv).
  using WrapperFactory = std::function<Result<std::unique_ptr<Env>>(
      Env* delegate, UriParams* params)>;

  /// The process-wide registry, pre-populated with the built-in backends
  /// (mem, posix) and wrappers (compressed, throttled, faulty).
  static EnvFactoryRegistry& Global();

  /// Registers or replaces a backend scheme / wrapper layer.
  void RegisterScheme(const std::string& scheme, SchemeFactory factory);
  void RegisterWrapper(const std::string& name, WrapperFactory factory);

  /// Resolves `uri` into an owned Env chain.
  Result<OpenedEnv> Open(const std::string& uri) const;

  /// Registered names, sorted (for error messages and --help output).
  std::vector<std::string> Schemes() const;
  std::vector<std::string> Wrappers() const;

 private:
  EnvFactoryRegistry();

  mutable std::mutex mu_;
  std::map<std::string, SchemeFactory> schemes_;
  std::map<std::string, WrapperFactory> wrappers_;
};

/// Shorthand for EnvFactoryRegistry::Global().Open(uri).
Result<OpenedEnv> OpenEnv(const std::string& uri);

}  // namespace tpcp

#endif  // TPCP_STORAGE_ENV_URI_H_
