#include "storage/throttled_env.h"

#include <chrono>
#include <thread>

#include "util/logging.h"

namespace tpcp {

ThrottledEnv::ThrottledEnv(Env* delegate, double throughput_mb_per_sec,
                           double latency_ms)
    : delegate_(delegate),
      bytes_per_second_(throughput_mb_per_sec * 1024.0 * 1024.0),
      latency_seconds_(latency_ms / 1e3) {
  TPCP_CHECK_GT(throughput_mb_per_sec, 0.0);
  TPCP_CHECK_GE(latency_ms, 0.0);
}

void ThrottledEnv::Charge(uint64_t bytes) {
  const double seconds =
      latency_seconds_ + static_cast<double>(bytes) / bytes_per_second_;
  throttled_nanos_.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                             std::memory_order_relaxed);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

Status ThrottledEnv::WriteFile(const std::string& name,
                               const std::string& data) {
  Charge(data.size());
  TPCP_RETURN_IF_ERROR(delegate_->WriteFile(name, data));
  stats_.RecordWrite(data.size());
  return Status::OK();
}

Status ThrottledEnv::ReadFile(const std::string& name, std::string* out) {
  TPCP_RETURN_IF_ERROR(delegate_->ReadFile(name, out));
  Charge(out->size());
  stats_.RecordRead(out->size());
  return Status::OK();
}

bool ThrottledEnv::FileExists(const std::string& name) {
  return delegate_->FileExists(name);
}

Status ThrottledEnv::DeleteFile(const std::string& name) {
  return delegate_->DeleteFile(name);
}

Result<uint64_t> ThrottledEnv::FileSize(const std::string& name) {
  return delegate_->FileSize(name);
}

std::vector<std::string> ThrottledEnv::ListFiles(const std::string& prefix) {
  return delegate_->ListFiles(prefix);
}

}  // namespace tpcp
