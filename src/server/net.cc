#include "server/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "server/wire.h"

namespace tpcp {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

/// write() until everything is out (or the peer is gone).
Status WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Errno("write");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Recognizes the connection hello (see net.h) and builds its reply.
/// Returns true when `payload` was a hello — the caller answers with
/// `*response` (always a plain frame: the peer cannot decode deflate
/// until it has read the grant) and, when `*grant` is set, switches the
/// connection to deflate for everything after it. A hello naming a
/// tenant authenticates the connection: on success `*auth_tenant` is
/// bound; on rejection the reply is {"ok":false,...}, nothing is granted
/// and the binding is untouched.
bool MaybeHandleHello(Tpcpd* daemon, const std::string& payload,
                      std::string* response, bool* grant,
                      std::string* auth_tenant) {
  const Result<JsonValue> request = JsonValue::Parse(payload);
  if (!request.ok() || !request->is_object()) return false;
  const JsonValue* cmd = request->Find("cmd");
  if (cmd == nullptr || !cmd->is_string() ||
      cmd->string_value() != "hello") {
    return false;
  }
  *grant = false;
  JsonValue reply = JsonValue::Object();
  if (const JsonValue* tenant = request->Find("tenant")) {
    std::string token;
    const JsonValue* tok = request->Find("token");
    if (tok != nullptr && tok->is_string()) token = tok->string_value();
    const Result<std::string> authed =
        tenant->is_string() ? daemon->Authenticate(tenant->string_value(),
                                                   token)
                            : Result<std::string>(Status::InvalidArgument(
                                  "hello field 'tenant' must be a string"));
    if (!authed.ok()) {
      reply.Set("ok", false);
      reply.Set("error", authed.status().ToString());
      *response = reply.Serialize();
      return true;
    }
    *auth_tenant = *authed;
    reply.Set("tenant", *authed);
  }
  const JsonValue* compress = request->Find("compress");
  *grant = compress != nullptr && compress->is_string() &&
           compress->string_value() == "deflate" && DeflateSupported();
  reply.Set("ok", true);
  reply.Set("compress", *grant ? "deflate" : "none");
  *response = reply.Serialize();
  return true;
}

}  // namespace

// ---- server ----------------------------------------------------------------

Result<std::unique_ptr<TpcpdServer>> TpcpdServer::Listen(Tpcpd* daemon,
                                                         int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Errno("bind 127.0.0.1:" + std::to_string(port));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 16) != 0) {
    const Status status = Errno("listen");
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status status = Errno("getsockname");
    ::close(fd);
    return status;
  }
  std::unique_ptr<TpcpdServer> server(new TpcpdServer());
  server->daemon_ = daemon;
  server->listen_fd_ = fd;
  server->bound_port_ = static_cast<int>(ntohs(addr.sin_port));
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

TpcpdServer::~TpcpdServer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    // Unblock the accept loop and every connection read.
    ::shutdown(listen_fd_, SHUT_RDWR);
    for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(connection_threads_);
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
  ::close(listen_fd_);
}

void TpcpdServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void TpcpdServer::ServeConnection(int fd) {
  FrameDecoder decoder;
  bool compress = false;
  std::string auth_tenant;  // set by an authenticated hello, sticky
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // peer closed (a trailing partial frame is simply dropped)
    }
    if (!decoder.Feed(buf, static_cast<size_t>(n)).ok()) {
      // The stream cannot be resynced; answer once, then hang up.
      JsonValue error = JsonValue::Object();
      error.Set("ok", false);
      error.Set("error", decoder.error().ToString());
      const Result<std::string> frame = EncodeFrame(error.Serialize());
      if (frame.ok()) WriteAll(fd, *frame);
      break;
    }
    std::string payload;
    bool alive = true;
    while (decoder.Next(&payload)) {
      std::string response;
      bool grant = false;
      const bool hello =
          MaybeHandleHello(daemon_, payload, &response, &grant, &auth_tenant);
      if (!hello) response = daemon_->HandleRequest(payload, auth_tenant);
      // The hello reply itself always ships plain — the client enables
      // its decoder only after reading the grant.
      const Result<std::string> frame =
          (compress && !hello) ? EncodeFrameDeflate(response)
                               : EncodeFrame(response);
      if (!frame.ok() || !WriteAll(fd, *frame).ok()) {
        alive = false;
        break;
      }
      if (hello && grant && !compress) {
        compress = true;
        decoder.EnableDeflate();
      }
    }
    if (!alive) break;
  }
  ::close(fd);
}

// ---- client ----------------------------------------------------------------

Result<std::unique_ptr<TpcpdClient>> TpcpdClient::Connect(
    const std::string& host, int port, const RetryPolicy& retry) {
  int connected_fd = -1;
  const Status status = RetryWithBackoff(
      retry, "connect " + host + ":" + std::to_string(port),
      [&host, port, &connected_fd]() -> Status {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) return Errno("socket");
        sockaddr_in addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<uint16_t>(port));
        if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
          ::close(fd);
          // Permanent: no retry will make the address parse.
          return Status::InvalidArgument("bad address '" + host + "'");
        }
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) != 0) {
          const Status error =
              Errno("connect " + host + ":" + std::to_string(port));
          ::close(fd);
          return error;  // IOError: transient, retried
        }
        connected_fd = fd;
        return Status::OK();
      });
  TPCP_RETURN_IF_ERROR(status);
  return std::unique_ptr<TpcpdClient>(new TpcpdClient(connected_fd));
}

TpcpdClient::~TpcpdClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<JsonValue> TpcpdClient::Call(const JsonValue& request) {
  TPCP_ASSIGN_OR_RETURN(const std::string frame,
                        compress_ ? EncodeFrameDeflate(request.Serialize())
                                  : EncodeFrame(request.Serialize()));
  TPCP_RETURN_IF_ERROR(WriteAll(fd_, frame));
  char buf[4096];
  std::string payload;
  while (!decoder_.Next(&payload)) {
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IOError("connection closed mid-response");
    }
    TPCP_RETURN_IF_ERROR(decoder_.Feed(buf, static_cast<size_t>(n)));
  }
  return JsonValue::Parse(payload);
}

Result<bool> TpcpdClient::NegotiateCompression() {
  if (compress_) return true;
  if (!DeflateSupported()) return false;  // nothing to offer
  JsonValue hello = JsonValue::Object();
  hello.Set("cmd", "hello");
  hello.Set("compress", "deflate");
  TPCP_ASSIGN_OR_RETURN(const JsonValue reply, Call(hello));
  // A pre-hello server answers with an unknown-command error; any reply
  // without an explicit deflate grant means "keep speaking plain".
  const JsonValue* granted = reply.Find("compress");
  if (granted == nullptr || !granted->is_string() ||
      granted->string_value() != "deflate") {
    return false;
  }
  compress_ = true;
  decoder_.EnableDeflate();
  return true;
}

Status TpcpdClient::Authenticate(const std::string& tenant,
                                 const std::string& token) {
  JsonValue hello = JsonValue::Object();
  hello.Set("cmd", "hello");
  hello.Set("tenant", tenant);
  hello.Set("token", token);
  TPCP_ASSIGN_OR_RETURN(const JsonValue reply, Call(hello));
  const JsonValue* ok = reply.Find("ok");
  if (ok != nullptr && ok->is_bool() && ok->bool_value()) {
    return Status::OK();
  }
  const JsonValue* error = reply.Find("error");
  return Status::InvalidArgument(
      error != nullptr && error->is_string()
          ? error->string_value()
          : "authentication rejected for tenant '" + tenant + "'");
}

}  // namespace tpcp
