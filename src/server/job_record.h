// Persisted job records — the survivable half of the tpcpd queue.
//
// The daemon writes one manifest-style text record per job into its state
// Env (`jobs/<id>`) and rewrites it on every scheduler transition. A
// record carries everything needed to re-create the job after a daemon
// restart: identity (tenant, name, priority, admission sequence), the
// serialized solver options, and the storage URI of the job's factor
// store. Recovery re-admits every non-terminal record; because the
// *effective* options (with the resolved buffer budget) are what gets
// persisted, a re-created spec fingerprints identically to the original
// run and Phase-2 auto-resume continues from the store's checkpoint
// bit-identically.
//
// Record format (one field per line, values %-escaped):
//
//   tpcpd-job 1
//   id 7
//   tenant alice
//   ...
//   opt rank 16
//   param grid 4
//   end
//
// The `end` trailer makes a truncated write detectable: a record without
// it is rejected at recovery instead of resurrecting a half-written job.

#ifndef TPCP_SERVER_JOB_RECORD_H_
#define TPCP_SERVER_JOB_RECORD_H_

#include <cstdint>
#include <map>
#include <string>

#include "core/config.h"
#include "util/status.h"

namespace tpcp {

/// Daemon-level lifecycle. Distinct from JobState: the daemon queues jobs
/// itself (admission control) and adds kPreempted — cancelled by the
/// scheduler to make room for higher priority, to be resumed, not a
/// terminal state.
enum class ServerJobState {
  kQueued = 0,
  kRunning = 1,
  kPreempted = 2,
  kSucceeded = 3,
  kFailed = 4,
  kCancelled = 5,
};

const char* ServerJobStateName(ServerJobState state);
Result<ServerJobState> ServerJobStateFromName(const std::string& name);

/// kSucceeded / kFailed / kCancelled.
inline bool IsTerminal(ServerJobState state) {
  return state == ServerJobState::kSucceeded ||
         state == ServerJobState::kFailed ||
         state == ServerJobState::kCancelled;
}

/// One persisted job.
struct ServerJobRecord {
  int64_t id = 0;
  std::string tenant;
  /// Client-chosen label (free text, for humans).
  std::string name;
  /// Larger runs first; ties broken by fair-share rotation then seq.
  int priority = 0;
  /// Admission sequence — preserved across preemption so a preempted job
  /// does not lose its place behind jobs admitted later.
  int64_t seq = 0;
  ServerJobState state = ServerJobState::kQueued;
  /// Times this job was preempted by the scheduler.
  int preemptions = 0;
  /// The last run engaged Phase-2 checkpoint resume.
  bool resumed = false;
  /// Terminal detail: failure/cancel message (empty otherwise).
  std::string detail;
  /// Final surrogate fit (meaningful in kSucceeded).
  double fit = 0.0;
  std::string solver = "2pcp";
  /// Storage URI of the job's own store (resolved, tenant-rooted).
  std::string session_uri;
  /// The admission-charged budget.
  uint64_t budget_buffer_bytes = 0;
  int budget_threads = 0;
  /// Serialized TwoPhaseCpOptions (OptionsToMap) and solver params.
  std::map<std::string, std::string> options;
  std::map<std::string, std::string> params;
};

std::string EncodeServerJobRecord(const ServerJobRecord& record);
Result<ServerJobRecord> DecodeServerJobRecord(const std::string& text);

// ---- options codec ---------------------------------------------------------
//
// The string map is the one serialization of TwoPhaseCpOptions, shared by
// job records and the wire protocol's "options" object. Round-trip exact:
// OptionsFromMap(OptionsToMap(o)) reproduces every math-shaping field, so
// a recovered job resumes under the same ResumeFingerprint.

/// Every scalar option as a string map (enums by canonical short name,
/// doubles in round-trip precision).
std::map<std::string, std::string> OptionsToMap(
    const TwoPhaseCpOptions& options);

/// Applies `key = value` onto `*options`. InvalidArgument naming the key
/// on an unknown key or unparsable value.
Status ApplyOption(const std::string& key, const std::string& value,
                   TwoPhaseCpOptions* options);

/// Defaults + every entry of `map` via ApplyOption.
Result<TwoPhaseCpOptions> OptionsFromMap(
    const std::map<std::string, std::string>& map);

}  // namespace tpcp

#endif  // TPCP_SERVER_JOB_RECORD_H_
