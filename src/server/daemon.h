// tpcpd — the multi-tenant decomposition daemon.
//
// Tpcpd layers scheduling policy over the mechanism JobService already
// provides (async execution, cooperative cancel landing within one
// virtual iteration, checkpointed bit-identical resume):
//
//   * Tenancy + admission control (server/tenant.h): every job is charged
//     a budget; a job only starts when the budget fits its tenant's quota
//     and the daemon totals, so aggregate usage is provably bounded.
//   * Priority scheduling with preemption: a higher-priority job that
//     cannot start preempts strictly-lower-priority running jobs via
//     Cancel. The victim checkpoints (within one vi), re-queues as
//     kPreempted with its admission seq intact, and later resumes
//     bit-identically from its Phase-2 checkpoint. Equal priorities
//     share fairly across tenants by recent consumption: the tenant
//     that has burned the least batch time lately starts first, so a
//     tenant running long jobs cannot starve one running short jobs the
//     way plain round-robin (one turn each, regardless of duration)
//     would.
//   * A survivable queue (server/job_record.h): every job's record is
//     rewritten on each transition into the daemon's state Env; a
//     restarted daemon re-admits the non-terminal backlog and running
//     jobs auto-resume from their checkpoints.
//
// The protocol front door is HandleRequest (one JSON request object in,
// one JSON response object out) — the socket layer (server/net.h) only
// moves frames, so the whole protocol is testable in-process.

#ifndef TPCP_SERVER_DAEMON_H_
#define TPCP_SERVER_DAEMON_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/job_service.h"
#include "server/job_record.h"
#include "server/json.h"
#include "server/tenant.h"
#include "storage/env_uri.h"
#include "util/status.h"

namespace tpcp {

/// Daemon-wide configuration.
struct TpcpdOptions {
  /// Storage URI of the daemon's own state (job records). posix:// makes
  /// the queue survive restarts; mem:// is per-process (tests).
  std::string state_uri = "mem://";
  /// Registered tenants. Submits naming anyone else are rejected.
  std::vector<TenantConfig> tenants;
  /// Daemon-global ceilings across all tenants.
  uint64_t total_buffer_bytes = 256ull << 20;
  int total_threads = 8;
  int max_running_jobs = 4;
  /// Log sink for the daemon's one-line event log (admitted / starts /
  /// preempts / succeeded / recovered ...). Null: silent.
  std::function<void(const std::string&)> log;
};

/// A typed submit, as carried by the wire protocol's "submit" command.
struct SubmitRequest {
  std::string tenant;
  /// Client-chosen label.
  std::string name;
  int priority = 0;
  std::string solver = "2pcp";
  TwoPhaseCpOptions options;
  std::map<std::string, std::string> params;
  /// Optional synthetic input: generate a low-rank tensor into the job's
  /// store at admission (the store must not already hold one).
  bool generate = false;
  std::vector<int64_t> gen_dims;
  int64_t gen_parts = 2;
  int64_t gen_rank = 4;
  double gen_noise = 0.05;
  uint64_t gen_seed = 1;
};

/// Per-tenant stats snapshot (the "tenant-stats" command).
struct TenantStats {
  TenantConfig config;
  ResourceUsage usage;
  int64_t waiting_jobs = 0;
  /// Decayed batch-seconds this tenant's finished runs have consumed —
  /// the fair-share weight (lowest goes first at equal priority).
  double consumed_seconds = 0.0;
};

class Tpcpd {
 public:
  /// Opens the state Env and every tenant root, recovers the persisted
  /// backlog, and starts the scheduler. InvalidArgument on duplicate or
  /// empty tenant names / unresolvable URIs.
  static Result<std::unique_ptr<Tpcpd>> Start(TpcpdOptions options);

  /// Graceful stop: running jobs are cancelled (they checkpoint within
  /// one virtual iteration) and re-queued as preempted in the persisted
  /// state, so a restarted daemon resumes them.
  ~Tpcpd();

  Tpcpd(const Tpcpd&) = delete;
  Tpcpd& operator=(const Tpcpd&) = delete;

  // ---- protocol ----

  /// One request, one response; never throws, never crashes on malformed
  /// input — every error is a well-formed {"ok":false,...} response.
  /// `auth_tenant` is the tenant the connection authenticated as via its
  /// hello (empty: unauthenticated). Commands that touch a token-protected
  /// tenant's jobs are rejected with {"ok":false} — before any job state
  /// is touched — unless auth_tenant matches; open tenants (no token)
  /// behave as before.
  std::string HandleRequest(const std::string& payload,
                            const std::string& auth_tenant = "");

  /// Validates a hello's tenant + token pair. Returns the tenant name to
  /// bind the connection to, NotFound for an unknown tenant, and
  /// InvalidArgument for a wrong token or a tenant with no token
  /// configured (an open tenant needs no authentication).
  Result<std::string> Authenticate(const std::string& tenant,
                                   const std::string& token) const;

  // ---- typed surface (what HandleRequest dispatches to) ----

  /// Validates, charges nothing yet, persists the record and queues the
  /// job. InvalidArgument / NotFound / ResourceExhausted on a bad spec,
  /// unknown tenant, or a budget that can never fit the tenant's quota.
  Result<int64_t> Submit(const SubmitRequest& request);
  Result<ServerJobRecord> Poll(int64_t id) const;
  /// Live engine progress of a running job (Phase-1 block counts, last
  /// completed virtual iteration, current fit). NotFound for an unknown
  /// id, FailedPrecondition when the job is not currently running.
  Result<JobProgress> Progress(int64_t id) const;
  /// Bounded wait for a daemon-terminal state; returns the current record
  /// either way (check IsTerminal(record.state)).
  Result<ServerJobRecord> Await(int64_t id, double timeout_seconds);
  /// All jobs, filtered by tenant and/or state name when non-empty.
  std::vector<ServerJobRecord> List(const std::string& tenant,
                                    const std::string& state) const;
  /// Cancels a job for good (terminal kCancelled; a preempted/queued job
  /// is retired without running again).
  Status Cancel(int64_t id);
  std::vector<TenantStats> Stats() const;

  // ---- invariants & counters (tests and the smoke harness) ----

  /// High-water marks of aggregate running usage since start.
  uint64_t peak_buffer_bytes() const;
  int peak_threads() const;
  int peak_running_jobs() const;
  /// Scheduler preemptions performed since start.
  int64_t preemption_count() const;
  /// Jobs re-admitted from persisted state at startup.
  int64_t recovered_count() const;

 private:
  struct ServerJob {
    ServerJobRecord record;
    JobBudget budget;
    /// Non-zero while submitted to the JobService.
    JobId service_id = 0;
    /// The scheduler cancelled this run to make room (vs. a user Cancel).
    bool preempt_requested = false;
    bool cancel_requested = false;
    /// When the current service run started (valid while service_id != 0);
    /// its elapsed time is charged to the tenant's fair-share weight.
    std::chrono::steady_clock::time_point started_at;
  };
  struct Tenant {
    TenantConfig config;
    OpenedEnv env;
    ResourceUsage usage;
    /// Fair-share weight: decayed sum of this tenant's run durations.
    /// Each finished or preempted batch charges
    ///   consumed = consumed * 0.5 + run_seconds
    /// so history fades geometrically and one long job long ago cannot
    /// penalize a tenant forever.
    double consumed_seconds = 0.0;
  };

  Tpcpd() = default;

  Status Init(TpcpdOptions options);
  void Recover();
  void SchedulerLoop();
  /// One scheduling pass under mu_: dispatch what fits, request
  /// preemptions for what outranks the running set.
  void SchedulePass(std::unique_lock<std::mutex>& lock);
  /// Starts `job` on the JobService; caller holds mu_.
  void StartJob(ServerJob* job, Tenant* tenant);
  /// JobService transition hook (no service lock held).
  void OnServiceTransition(const JobInfo& info);
  void PersistRecord(const ServerJobRecord& record);
  void LogLine(const std::string& line) const;
  /// Builds the synthetic input for a generate-submit; called outside mu_.
  Status GenerateInput(const SubmitRequest& request, Tenant* tenant,
                       int64_t job_id);

  // HandleRequest helpers (build/parse protocol JSON).
  JsonValue RecordToJson(const ServerJobRecord& record) const;
  Result<JsonValue> Dispatch(const JsonValue& request,
                             const std::string& auth_tenant);
  /// OK when `auth_tenant` may act on `tenant`'s jobs: the tenant is open
  /// (no token) or the connection authenticated as it.
  Status CheckTenantAccess(const std::string& tenant,
                           const std::string& auth_tenant) const;
  /// The owning tenant of job `id` (NotFound for an unknown id).
  Result<std::string> JobTenant(int64_t id) const;

  TpcpdOptions options_;
  OpenedEnv state_env_;
  std::map<std::string, Tenant> tenants_;

  mutable std::mutex mu_;
  std::condition_variable sched_cv_;  // scheduler: work may have appeared
  std::condition_variable done_cv_;   // Await: some job changed state
  std::map<int64_t, ServerJob> jobs_;
  std::map<JobId, int64_t> service_to_job_;
  int64_t next_id_ = 1;
  int64_t next_seq_ = 1;
  bool shutdown_ = false;

  ResourceUsage total_usage_;
  uint64_t peak_buffer_bytes_ = 0;
  int peak_threads_ = 0;
  int peak_running_jobs_ = 0;
  int64_t preemptions_ = 0;
  int64_t recovered_ = 0;

  std::unique_ptr<JobService> service_;
  std::thread scheduler_;
};

}  // namespace tpcp

#endif  // TPCP_SERVER_DAEMON_H_
