#include "server/daemon.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "api/session.h"
#include "data/synthetic.h"
#include "util/format.h"

namespace tpcp {

namespace {

constexpr const char* kJobPrefix = "jobs/";

std::string JobFileName(int64_t id) {
  return kJobPrefix + std::to_string(id);
}

std::string TensorPrefix(int64_t id) {
  return "job-" + std::to_string(id) + "/tensor";
}

std::string FactorPrefix(int64_t id) {
  return "job-" + std::to_string(id) + "/factors";
}

/// A protocol number rendered as the option-map string ApplyOption reads.
Result<std::string> JsonOptionToString(const std::string& key,
                                       const JsonValue& value) {
  if (value.is_string()) return value.string_value();
  if (value.is_bool()) return std::string(value.bool_value() ? "1" : "0");
  if (value.is_int()) return std::to_string(value.int_value());
  if (value.kind() == JsonValue::Kind::kDouble) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value.number_value());
    return std::string(buf);
  }
  return Status::InvalidArgument("option '" + key +
                                 "' must be a scalar (string/number/bool)");
}

}  // namespace

Result<std::unique_ptr<Tpcpd>> Tpcpd::Start(TpcpdOptions options) {
  std::unique_ptr<Tpcpd> daemon(new Tpcpd());
  TPCP_RETURN_IF_ERROR(daemon->Init(std::move(options)));
  return daemon;
}

Status Tpcpd::Init(TpcpdOptions options) {
  options_ = std::move(options);
  if (options_.max_running_jobs < 1 || options_.total_threads < 1 ||
      options_.total_buffer_bytes == 0) {
    return Status::InvalidArgument(
        "daemon totals (buffer/threads/max_running_jobs) must be positive");
  }
  TPCP_ASSIGN_OR_RETURN(state_env_, OpenEnv(options_.state_uri));
  for (TenantConfig& config : options_.tenants) {
    if (config.name.empty()) {
      return Status::InvalidArgument("tenant name must not be empty");
    }
    if (tenants_.count(config.name) != 0) {
      return Status::InvalidArgument("duplicate tenant '" + config.name +
                                     "'");
    }
    Tenant tenant;
    tenant.config = config;
    TPCP_ASSIGN_OR_RETURN(tenant.env, OpenEnv(config.storage_uri));
    tenants_[config.name] = std::move(tenant);
  }
  if (tenants_.empty()) {
    return Status::InvalidArgument("tpcpd needs at least one tenant");
  }

  Recover();

  JobServiceOptions service_options;
  service_options.num_workers = options_.max_running_jobs;
  service_options.on_transition = [this](const JobInfo& info) {
    OnServiceTransition(info);
  };
  service_ = std::make_unique<JobService>(service_options);
  scheduler_ = std::thread([this] { SchedulerLoop(); });
  LogLine("tpcpd: serving " + std::to_string(tenants_.size()) +
          " tenant(s), totals " + HumanBytes(options_.total_buffer_bytes) +
          " / " + std::to_string(options_.total_threads) + " threads / " +
          std::to_string(options_.max_running_jobs) + " jobs");
  return Status::OK();
}

Tpcpd::~Tpcpd() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  sched_cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
  // The service destructor cancels running jobs; each winds down at its
  // next vi boundary with a checkpoint, and OnServiceTransition (seeing
  // shutdown_) re-queues it as preempted in the persisted state.
  service_.reset();
  LogLine("tpcpd: stopped");
}

void Tpcpd::Recover() {
  const std::vector<std::string> files = state_env_->ListFiles(kJobPrefix);
  int64_t recovered = 0;
  for (const std::string& file : files) {
    std::string text;
    if (!state_env_->ReadFile(file, &text).ok()) continue;
    const Result<ServerJobRecord> decoded = DecodeServerJobRecord(text);
    if (!decoded.ok()) {
      LogLine("tpcpd: skipping corrupt job record " + file + ": " +
              decoded.status().ToString());
      continue;
    }
    ServerJobRecord record = *decoded;
    next_id_ = std::max(next_id_, record.id + 1);
    next_seq_ = std::max(next_seq_, record.seq + 1);
    if (tenants_.count(record.tenant) == 0) {
      LogLine("tpcpd: job " + std::to_string(record.id) +
              " names unregistered tenant '" + record.tenant +
              "', leaving on disk");
      continue;
    }
    if (!IsTerminal(record.state)) {
      // A record still marked running means the previous daemon died with
      // the job in flight; its store holds the last checkpoint, so it
      // re-enters the queue as preempted and auto-resumes.
      if (record.state == ServerJobState::kRunning) {
        record.state = ServerJobState::kPreempted;
        PersistRecord(record);
      }
      ++recovered;
      LogLine("tpcpd: recovered job " + std::to_string(record.id) +
              " (tenant " + record.tenant + ", " +
              ServerJobStateName(record.state) + ")");
    }
    ServerJob job;
    job.record = std::move(record);
    job.budget.buffer_bytes = job.record.budget_buffer_bytes;
    job.budget.threads = job.record.budget_threads;
    jobs_[job.record.id] = std::move(job);
  }
  recovered_ = recovered;
  if (recovered > 0) {
    LogLine("tpcpd: recovered " + std::to_string(recovered) +
            " job(s) from persisted queue");
  }
}

void Tpcpd::PersistRecord(const ServerJobRecord& record) {
  const Status status = state_env_->WriteFile(JobFileName(record.id),
                                              EncodeServerJobRecord(record));
  if (!status.ok()) {
    LogLine("tpcpd: failed to persist job " + std::to_string(record.id) +
            ": " + status.ToString());
  }
}

void Tpcpd::LogLine(const std::string& line) const {
  if (options_.log) options_.log(line);
}

Status Tpcpd::GenerateInput(const SubmitRequest& request, Tenant* tenant,
                            int64_t job_id) {
  if (request.gen_dims.empty()) {
    return Status::InvalidArgument("generate needs a non-empty dims list");
  }
  SessionOptions session_options;
  session_options.env = tenant->env.get();
  session_options.tensor_prefix = TensorPrefix(job_id);
  session_options.factor_prefix = FactorPrefix(job_id);
  TPCP_ASSIGN_OR_RETURN(auto session, Session::Open(session_options));
  TPCP_ASSIGN_OR_RETURN(
      const GridPartition grid,
      GridPartition::CreateUniform(Shape(request.gen_dims),
                                   request.gen_parts));
  TPCP_ASSIGN_OR_RETURN(BlockTensorStore * store,
                        session->CreateTensorStore(grid));
  LowRankSpec spec;
  spec.shape = grid.tensor_shape();
  spec.rank = request.gen_rank;
  spec.noise_level = request.gen_noise;
  spec.seed = request.gen_seed;
  return GenerateLowRankIntoStore(spec, store);
}

Result<int64_t> Tpcpd::Submit(const SubmitRequest& request) {
  const auto tenant_it = tenants_.find(request.tenant);
  if (tenant_it == tenants_.end()) {
    return Status::NotFound("unknown tenant '" + request.tenant + "'");
  }
  Tenant* tenant = &tenant_it->second;
  if (request.options.rank < 1) {
    return Status::InvalidArgument("rank must be >= 1");
  }
  const std::vector<std::string> solvers = Session::Solvers();
  if (std::find(solvers.begin(), solvers.end(), request.solver) ==
      solvers.end()) {
    return Status::InvalidArgument("unknown solver '" + request.solver +
                                   "'");
  }
  const JobBudget budget =
      ComputeJobBudget(request.options, tenant->config.quota);
  if (!BudgetFitsQuota(budget, tenant->config.quota)) {
    return Status::ResourceExhausted(
        "job budget (" + HumanBytes(budget.buffer_bytes) + ", " +
        std::to_string(budget.threads) + " threads) exceeds tenant '" +
        request.tenant + "' quota (" +
        HumanBytes(tenant->config.quota.buffer_bytes) + ", " +
        std::to_string(tenant->config.quota.threads) + " threads)");
  }
  if (budget.buffer_bytes > options_.total_buffer_bytes ||
      budget.threads > options_.total_threads) {
    return Status::ResourceExhausted(
        "job budget exceeds the daemon totals");
  }

  int64_t id = 0;
  int64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return Status::FailedPrecondition("daemon stopping");
    id = next_id_++;
    seq = next_seq_++;
  }
  if (request.generate) {
    TPCP_RETURN_IF_ERROR(GenerateInput(request, tenant, id));
  }

  ServerJob job;
  job.record.id = id;
  job.record.tenant = request.tenant;
  job.record.name = request.name;
  job.record.priority = request.priority;
  job.record.seq = seq;
  job.record.state = ServerJobState::kQueued;
  job.record.solver = request.solver;
  job.record.session_uri =
      tenant->config.storage_uri + "#job-" + std::to_string(id);
  job.record.budget_buffer_bytes = budget.buffer_bytes;
  job.record.budget_threads = budget.threads;
  job.record.options = OptionsToMap(request.options);
  job.record.params = request.params;
  job.budget = budget;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PersistRecord(job.record);
    LogLine("tpcpd: job " + std::to_string(id) + " (tenant " +
            request.tenant + ", prio " + std::to_string(request.priority) +
            ") admitted");
    jobs_[id] = std::move(job);
  }
  sched_cv_.notify_all();
  return id;
}

Result<ServerJobRecord> Tpcpd::Poll(int64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job " + std::to_string(id));
  }
  return it->second.record;
}

Result<JobProgress> Tpcpd::Progress(int64_t id) const {
  JobId service_id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return Status::NotFound("no job " + std::to_string(id));
    }
    service_id = it->second.service_id;
  }
  if (service_id == 0) {
    return Status::FailedPrecondition("job " + std::to_string(id) +
                                      " is not running");
  }
  TPCP_ASSIGN_OR_RETURN(const JobInfo info, service_->Poll(service_id));
  return info.progress;
}

Result<ServerJobRecord> Tpcpd::Await(int64_t id, double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job " + std::to_string(id));
  }
  if (timeout_seconds > 0.0) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_seconds));
    done_cv_.wait_until(lock, deadline, [&] {
      return IsTerminal(it->second.record.state) || shutdown_;
    });
  }
  return it->second.record;
}

std::vector<ServerJobRecord> Tpcpd::List(const std::string& tenant,
                                         const std::string& state) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ServerJobRecord> out;
  for (const auto& [id, job] : jobs_) {
    if (!tenant.empty() && job.record.tenant != tenant) continue;
    if (!state.empty() &&
        state != ServerJobStateName(job.record.state)) {
      continue;
    }
    out.push_back(job.record);
  }
  return out;
}

Status Tpcpd::Cancel(int64_t id) {
  JobId service_id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return Status::NotFound("no job " + std::to_string(id));
    }
    ServerJob& job = it->second;
    if (IsTerminal(job.record.state)) return Status::OK();
    job.cancel_requested = true;
    if (job.service_id != 0) {
      service_id = job.service_id;  // running: cancel lands within one vi
    } else {
      job.record.state = ServerJobState::kCancelled;
      job.record.detail = "cancelled before running";
      PersistRecord(job.record);
      LogLine("tpcpd: job " + std::to_string(id) + " cancelled (queued)");
    }
  }
  if (service_id != 0) {
    TPCP_RETURN_IF_ERROR(service_->Cancel(service_id));
  }
  done_cv_.notify_all();
  sched_cv_.notify_all();
  return Status::OK();
}

std::vector<TenantStats> Tpcpd::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TenantStats> out;
  for (const auto& [name, tenant] : tenants_) {
    TenantStats stats;
    stats.config = tenant.config;
    stats.usage = tenant.usage;
    stats.consumed_seconds = tenant.consumed_seconds;
    for (const auto& [id, job] : jobs_) {
      if (job.record.tenant == name &&
          (job.record.state == ServerJobState::kQueued ||
           job.record.state == ServerJobState::kPreempted)) {
        ++stats.waiting_jobs;
      }
    }
    out.push_back(std::move(stats));
  }
  return out;
}

uint64_t Tpcpd::peak_buffer_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_buffer_bytes_;
}
int Tpcpd::peak_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_threads_;
}
int Tpcpd::peak_running_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_running_jobs_;
}
int64_t Tpcpd::preemption_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return preemptions_;
}
int64_t Tpcpd::recovered_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recovered_;
}

// ---- scheduler -------------------------------------------------------------

void Tpcpd::SchedulerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!shutdown_) {
    SchedulePass(lock);
    sched_cv_.wait(lock);
  }
}

void Tpcpd::StartJob(ServerJob* job, Tenant* tenant) {
  const Result<TwoPhaseCpOptions> options =
      OptionsFromMap(job->record.options);
  if (!options.ok()) {
    job->record.state = ServerJobState::kFailed;
    job->record.detail = options.status().ToString();
    PersistRecord(job->record);
    return;
  }
  JobSpec spec;
  spec.session.env = tenant->env.get();
  spec.session.tensor_prefix = TensorPrefix(job->record.id);
  spec.session.factor_prefix = FactorPrefix(job->record.id);
  spec.solver = job->record.solver;
  spec.options = *options;
  spec.params = job->record.params;
  spec.auto_resume = true;
  const Result<JobId> submitted = service_->Submit(std::move(spec));
  if (!submitted.ok()) {
    job->record.state = ServerJobState::kFailed;
    job->record.detail = submitted.status().ToString();
    PersistRecord(job->record);
    return;
  }
  const bool resuming = job->record.state == ServerJobState::kPreempted;
  job->service_id = *submitted;
  job->started_at = std::chrono::steady_clock::now();
  service_to_job_[*submitted] = job->record.id;
  job->record.state = ServerJobState::kRunning;
  PersistRecord(job->record);
  tenant->usage.Charge(job->budget);
  total_usage_.Charge(job->budget);
  peak_buffer_bytes_ = std::max(peak_buffer_bytes_, total_usage_.buffer_bytes);
  peak_threads_ = std::max(peak_threads_, total_usage_.threads);
  peak_running_jobs_ = std::max(peak_running_jobs_, total_usage_.running_jobs);
  LogLine("tpcpd: job " + std::to_string(job->record.id) +
          (resuming ? " resumes (" : " starts (") +
          HumanBytes(job->budget.buffer_bytes) + ", " +
          std::to_string(job->budget.threads) + " threads)");
}

void Tpcpd::SchedulePass(std::unique_lock<std::mutex>& lock) {
  (void)lock;  // held for the whole pass
  const TenantQuota global_quota{options_.total_buffer_bytes,
                                 options_.total_threads,
                                 options_.max_running_jobs};
  for (;;) {
    // Waiting jobs, per tenant, best (priority desc, seq asc) first.
    std::map<std::string, ServerJob*> best;
    int top_priority = 0;
    bool any = false;
    for (auto& [id, job] : jobs_) {
      if (job.service_id != 0 || job.cancel_requested) continue;
      if (job.record.state != ServerJobState::kQueued &&
          job.record.state != ServerJobState::kPreempted) {
        continue;
      }
      ServerJob*& slot = best[job.record.tenant];
      if (slot == nullptr ||
          job.record.priority > slot->record.priority ||
          (job.record.priority == slot->record.priority &&
           job.record.seq < slot->record.seq)) {
        slot = &job;
      }
      if (!any || job.record.priority > top_priority) {
        top_priority = job.record.priority;
        any = true;
      }
    }
    if (!any) return;

    // Fair share at the top priority: the tenant that has consumed the
    // least recent batch time goes first, so turn length — not turn
    // count — is what equalizes. Ties (e.g. all-fresh tenants) break by
    // fewest running jobs, then name, keeping the pass deterministic.
    std::vector<std::string> ring;
    for (const auto& [name, candidate] : best) {
      if (candidate->record.priority == top_priority) ring.push_back(name);
    }
    std::sort(ring.begin(), ring.end(),
              [this](const std::string& a, const std::string& b) {
                const Tenant& ta = tenants_.at(a);
                const Tenant& tb = tenants_.at(b);
                if (ta.consumed_seconds != tb.consumed_seconds) {
                  return ta.consumed_seconds < tb.consumed_seconds;
                }
                if (ta.usage.running_jobs != tb.usage.running_jobs) {
                  return ta.usage.running_jobs < tb.usage.running_jobs;
                }
                return a < b;
              });

    bool started = false;
    for (const std::string& name : ring) {
      ServerJob* candidate = best[name];
      Tenant* tenant = &tenants_[name];
      if (CanStart(candidate->budget, tenant->usage, tenant->config.quota) &&
          CanStart(candidate->budget, total_usage_, global_quota)) {
        StartJob(candidate, tenant);
        started = true;
        break;
      }
      // Blocked. See whether evicting strictly-lower-priority running
      // jobs would make room; count preemptions already in flight as
      // pending room first.
      ResourceUsage tenant_sim = tenant->usage;
      ResourceUsage total_sim = total_usage_;
      for (const auto& [id, job] : jobs_) {
        if (job.service_id != 0 &&
            (job.preempt_requested || job.cancel_requested)) {
          total_sim.Release(job.budget);
          if (job.record.tenant == name) tenant_sim.Release(job.budget);
        }
      }
      if (CanStart(candidate->budget, tenant_sim, tenant->config.quota) &&
          CanStart(candidate->budget, total_sim, global_quota)) {
        // Enough room is already on its way; wait for it to land.
        return;
      }
      // Victims: running, lower priority, youngest first.
      std::vector<ServerJob*> victims;
      for (auto& [id, job] : jobs_) {
        if (job.service_id == 0 || job.preempt_requested ||
            job.cancel_requested) {
          continue;
        }
        if (job.record.priority < candidate->record.priority) {
          victims.push_back(&job);
        }
      }
      std::sort(victims.begin(), victims.end(),
                [](const ServerJob* a, const ServerJob* b) {
                  if (a->record.priority != b->record.priority) {
                    return a->record.priority < b->record.priority;
                  }
                  return a->record.seq > b->record.seq;
                });
      std::vector<ServerJob*> chosen;
      for (ServerJob* victim : victims) {
        total_sim.Release(victim->budget);
        if (victim->record.tenant == name) tenant_sim.Release(victim->budget);
        chosen.push_back(victim);
        if (CanStart(candidate->budget, tenant_sim, tenant->config.quota) &&
            CanStart(candidate->budget, total_sim, global_quota)) {
          break;
        }
      }
      if (!chosen.empty() &&
          CanStart(candidate->budget, tenant_sim, tenant->config.quota) &&
          CanStart(candidate->budget, total_sim, global_quota)) {
        for (ServerJob* victim : chosen) {
          victim->preempt_requested = true;
          LogLine("tpcpd: job " + std::to_string(candidate->record.id) +
                  " (prio " + std::to_string(candidate->record.priority) +
                  ") preempts job " + std::to_string(victim->record.id) +
                  " (prio " + std::to_string(victim->record.priority) +
                  ")");
          service_->Cancel(victim->service_id);
        }
      }
      // Strict priority: while the top-priority candidate is blocked, do
      // not backfill lower-priority work behind it.
      return;
    }
    if (!started) return;
  }
}

void Tpcpd::OnServiceTransition(const JobInfo& info) {
  if (!IsTerminal(info.state)) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto map_it = service_to_job_.find(info.id);
    if (map_it == service_to_job_.end()) return;
    const int64_t id = map_it->second;
    service_to_job_.erase(map_it);
    const auto job_it = jobs_.find(id);
    if (job_it == jobs_.end()) return;
    ServerJob& job = job_it->second;
    job.service_id = 0;
    Tenant& tenant = tenants_[job.record.tenant];
    tenant.usage.Release(job.budget);
    total_usage_.Release(job.budget);
    // Fair-share accounting: charge this batch's wall time to the tenant
    // with geometric decay of older history. Every terminal transition —
    // success, failure, cancel, preempt — pays; a preempted job that keeps
    // getting restarted keeps paying per batch, which is exactly what lets
    // a short-job tenant slip in between its slices.
    const double run_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      job.started_at)
            .count();
    tenant.consumed_seconds = tenant.consumed_seconds * 0.5 + run_seconds;
    job.record.resumed = info.resumed;
    job.record.fit = info.progress.fit;
    switch (info.state) {
      case JobState::kSucceeded:
        job.record.state = ServerJobState::kSucceeded;
        job.record.fit = info.result.surrogate_fit;
        LogLine("tpcpd: job " + std::to_string(id) + " succeeded (fit " +
                std::to_string(info.result.surrogate_fit) + ", vi " +
                std::to_string(info.result.virtual_iterations) +
                (info.resumed ? ", resumed)" : ")"));
        break;
      case JobState::kFailed:
        job.record.state = ServerJobState::kFailed;
        job.record.detail = info.status.ToString();
        LogLine("tpcpd: job " + std::to_string(id) + " failed: " +
                info.status.ToString());
        break;
      case JobState::kCancelled:
        if (job.cancel_requested) {
          job.record.state = ServerJobState::kCancelled;
          job.record.detail = "cancelled";
          LogLine("tpcpd: job " + std::to_string(id) + " cancelled");
        } else if (job.preempt_requested) {
          job.preempt_requested = false;
          job.record.state = ServerJobState::kPreempted;
          ++job.record.preemptions;
          ++preemptions_;
          LogLine("tpcpd: job " + std::to_string(id) +
                  " preempted at vi " +
                  std::to_string(info.progress.virtual_iteration) +
                  " (checkpoint persisted)");
        } else {
          // Shutdown path: the service cancelled it on our behalf; park
          // it as preempted so a restarted daemon resumes it.
          job.record.state = ServerJobState::kPreempted;
          LogLine("tpcpd: job " + std::to_string(id) +
                  " parked for restart (checkpoint persisted)");
        }
        break;
      default:
        break;
    }
    PersistRecord(job.record);
  }
  done_cv_.notify_all();
  sched_cv_.notify_all();
}

// ---- protocol --------------------------------------------------------------

JsonValue Tpcpd::RecordToJson(const ServerJobRecord& record) const {
  JsonValue out = JsonValue::Object();
  out.Set("id", record.id);
  out.Set("tenant", record.tenant);
  out.Set("name", record.name);
  out.Set("priority", record.priority);
  out.Set("seq", record.seq);
  out.Set("state", ServerJobStateName(record.state));
  out.Set("preemptions", record.preemptions);
  out.Set("resumed", record.resumed);
  out.Set("fit", record.fit);
  out.Set("solver", record.solver);
  out.Set("session_uri", record.session_uri);
  out.Set("budget_buffer_bytes", record.budget_buffer_bytes);
  out.Set("budget_threads", record.budget_threads);
  if (!record.detail.empty()) out.Set("detail", record.detail);
  return out;
}

Result<std::string> Tpcpd::Authenticate(const std::string& tenant,
                                        const std::string& token) const {
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return Status::NotFound("unknown tenant '" + tenant + "'");
  }
  if (it->second.config.token.empty()) {
    return Status::InvalidArgument("tenant '" + tenant +
                                   "' has no token configured");
  }
  if (it->second.config.token != token) {
    return Status::InvalidArgument("bad token for tenant '" + tenant + "'");
  }
  return tenant;
}

Status Tpcpd::CheckTenantAccess(const std::string& tenant,
                                const std::string& auth_tenant) const {
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return Status::NotFound("unknown tenant '" + tenant + "'");
  }
  if (it->second.config.token.empty() || auth_tenant == tenant) {
    return Status::OK();
  }
  return Status::InvalidArgument(
      "tenant '" + tenant +
      "' requires token authentication (hello with tenant and token)");
}

Result<std::string> Tpcpd::JobTenant(int64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job " + std::to_string(id));
  }
  return it->second.record.tenant;
}

Result<JsonValue> Tpcpd::Dispatch(const JsonValue& request,
                                  const std::string& auth_tenant) {
  if (!request.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  TPCP_ASSIGN_OR_RETURN(const std::string cmd, GetString(request, "cmd"));
  JsonValue response = JsonValue::Object();
  response.Set("ok", true);

  if (cmd == "submit") {
    SubmitRequest submit;
    TPCP_ASSIGN_OR_RETURN(submit.tenant, GetString(request, "tenant"));
    TPCP_RETURN_IF_ERROR(CheckTenantAccess(submit.tenant, auth_tenant));
    TPCP_ASSIGN_OR_RETURN(submit.name, GetStringOr(request, "name", ""));
    TPCP_ASSIGN_OR_RETURN(const int64_t priority,
                          GetIntOr(request, "priority", 0));
    submit.priority = static_cast<int>(priority);
    TPCP_ASSIGN_OR_RETURN(submit.solver,
                          GetStringOr(request, "solver", "2pcp"));
    if (const JsonValue* options = request.Find("options")) {
      if (!options->is_object()) {
        return Status::InvalidArgument("field 'options' must be an object");
      }
      for (const auto& [key, value] : options->object_items()) {
        TPCP_ASSIGN_OR_RETURN(const std::string text,
                              JsonOptionToString(key, value));
        TPCP_RETURN_IF_ERROR(ApplyOption(key, text, &submit.options));
      }
    }
    if (const JsonValue* params = request.Find("params")) {
      if (!params->is_object()) {
        return Status::InvalidArgument("field 'params' must be an object");
      }
      for (const auto& [key, value] : params->object_items()) {
        if (!value.is_string()) {
          return Status::InvalidArgument("param '" + key +
                                         "' must be a string");
        }
        submit.params[key] = value.string_value();
      }
    }
    if (const JsonValue* generate = request.Find("generate")) {
      if (!generate->is_object()) {
        return Status::InvalidArgument(
            "field 'generate' must be an object");
      }
      submit.generate = true;
      const JsonValue* dims = generate->Find("dims");
      if (dims == nullptr || !dims->is_array()) {
        return Status::InvalidArgument(
            "field 'generate.dims' must be an array of integers");
      }
      for (const JsonValue& dim : dims->array_items()) {
        if (!dim.is_int()) {
          return Status::InvalidArgument(
              "field 'generate.dims' must be an array of integers");
        }
        submit.gen_dims.push_back(dim.int_value());
      }
      TPCP_ASSIGN_OR_RETURN(submit.gen_parts,
                            GetIntOr(*generate, "parts", 2));
      TPCP_ASSIGN_OR_RETURN(submit.gen_rank, GetIntOr(*generate, "rank", 4));
      TPCP_ASSIGN_OR_RETURN(submit.gen_noise,
                            GetDoubleOr(*generate, "noise", 0.05));
      TPCP_ASSIGN_OR_RETURN(const int64_t seed,
                            GetIntOr(*generate, "seed", 1));
      submit.gen_seed = static_cast<uint64_t>(seed);
    }
    TPCP_ASSIGN_OR_RETURN(const int64_t id, Submit(submit));
    response.Set("job", id);
    return response;
  }

  if (cmd == "poll") {
    TPCP_ASSIGN_OR_RETURN(const int64_t id, GetInt(request, "job"));
    TPCP_ASSIGN_OR_RETURN(const std::string owner, JobTenant(id));
    TPCP_RETURN_IF_ERROR(CheckTenantAccess(owner, auth_tenant));
    TPCP_ASSIGN_OR_RETURN(const ServerJobRecord record, Poll(id));
    response.Set("job", RecordToJson(record));
    if (const Result<JobProgress> progress = Progress(id); progress.ok()) {
      JsonValue live = JsonValue::Object();
      live.Set("phase1_blocks_done", progress->phase1_blocks_done);
      live.Set("phase1_blocks_total", progress->phase1_blocks_total);
      live.Set("phase1_done", progress->phase1_done);
      live.Set("virtual_iteration", progress->virtual_iteration);
      live.Set("fit", progress->fit);
      response.Set("progress", std::move(live));
    }
    return response;
  }

  if (cmd == "await") {
    TPCP_ASSIGN_OR_RETURN(const int64_t id, GetInt(request, "job"));
    TPCP_ASSIGN_OR_RETURN(const std::string owner, JobTenant(id));
    TPCP_RETURN_IF_ERROR(CheckTenantAccess(owner, auth_tenant));
    TPCP_ASSIGN_OR_RETURN(double timeout,
                          GetDoubleOr(request, "timeout_seconds", 10.0));
    timeout = std::min(timeout, 3600.0);
    TPCP_ASSIGN_OR_RETURN(const ServerJobRecord record, Await(id, timeout));
    response.Set("job", RecordToJson(record));
    response.Set("terminal", IsTerminal(record.state));
    return response;
  }

  if (cmd == "list") {
    TPCP_ASSIGN_OR_RETURN(const std::string tenant,
                          GetStringOr(request, "tenant", ""));
    TPCP_ASSIGN_OR_RETURN(const std::string state,
                          GetStringOr(request, "state", ""));
    if (!state.empty()) {
      TPCP_RETURN_IF_ERROR(ServerJobStateFromName(state).status());
    }
    if (!tenant.empty() && tenants_.count(tenant) == 0) {
      return Status::NotFound("unknown tenant '" + tenant + "'");
    }
    if (!tenant.empty()) {
      TPCP_RETURN_IF_ERROR(CheckTenantAccess(tenant, auth_tenant));
    }
    JsonValue array = JsonValue::Array();
    for (const ServerJobRecord& record : List(tenant, state)) {
      // An unfiltered list only shows the jobs this connection may act on:
      // open tenants' plus the authenticated tenant's own.
      if (!CheckTenantAccess(record.tenant, auth_tenant).ok()) continue;
      array.Append(RecordToJson(record));
    }
    response.Set("jobs", std::move(array));
    return response;
  }

  if (cmd == "cancel") {
    TPCP_ASSIGN_OR_RETURN(const int64_t id, GetInt(request, "job"));
    TPCP_ASSIGN_OR_RETURN(const std::string owner, JobTenant(id));
    TPCP_RETURN_IF_ERROR(CheckTenantAccess(owner, auth_tenant));
    TPCP_RETURN_IF_ERROR(Cancel(id));
    return response;
  }

  if (cmd == "tenant-stats") {
    JsonValue array = JsonValue::Array();
    for (const TenantStats& stats : Stats()) {
      JsonValue entry = JsonValue::Object();
      entry.Set("name", stats.config.name);
      entry.Set("storage_uri", stats.config.storage_uri);
      JsonValue quota = JsonValue::Object();
      quota.Set("buffer_bytes", stats.config.quota.buffer_bytes);
      quota.Set("threads", stats.config.quota.threads);
      quota.Set("max_concurrent_jobs",
                stats.config.quota.max_concurrent_jobs);
      entry.Set("quota", std::move(quota));
      JsonValue usage = JsonValue::Object();
      usage.Set("buffer_bytes", stats.usage.buffer_bytes);
      usage.Set("threads", stats.usage.threads);
      usage.Set("running_jobs", stats.usage.running_jobs);
      entry.Set("usage", std::move(usage));
      entry.Set("waiting_jobs", stats.waiting_jobs);
      entry.Set("consumed_seconds", stats.consumed_seconds);
      array.Append(std::move(entry));
    }
    response.Set("tenants", std::move(array));
    return response;
  }

  return Status::InvalidArgument("unknown command '" + cmd + "'");
}

std::string Tpcpd::HandleRequest(const std::string& payload,
                                 const std::string& auth_tenant) {
  const Result<JsonValue> parsed = JsonValue::Parse(payload);
  Result<JsonValue> response = parsed.ok()
                                   ? Dispatch(*parsed, auth_tenant)
                                   : Result<JsonValue>(parsed.status());
  if (response.ok()) return response->Serialize();
  JsonValue error = JsonValue::Object();
  error.Set("ok", false);
  error.Set("error", response.status().ToString());
  return error.Serialize();
}

}  // namespace tpcp
