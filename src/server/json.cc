#include "server/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace tpcp {

namespace {

constexpr int kMaxDepth = 32;

void EscapeTo(const std::string& text, std::string* out) {
  out->push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Recursive-descent parser over [pos, text.size()).
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Run() {
    TPCP_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Err("trailing bytes after JSON value");
    }
    return value;
  }

 private:
  Status Err(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    const size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      TPCP_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue(std::move(s));
    }
    if (ConsumeWord("true")) return JsonValue(true);
    if (ConsumeWord("false")) return JsonValue(false);
    if (ConsumeWord("null")) return JsonValue();
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Err(std::string("unexpected character '") + c + "'");
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue object = JsonValue::Object();
    SkipSpace();
    if (Consume('}')) return object;
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected object key string");
      }
      TPCP_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipSpace();
      if (!Consume(':')) return Err("expected ':' after object key");
      TPCP_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      object.Set(key, std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return object;
      return Err("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue array = JsonValue::Array();
    SkipSpace();
    if (Consume(']')) return array;
    for (;;) {
      TPCP_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      array.Append(std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return array;
      return Err("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Err("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Err("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // needed by this protocol; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          return Err(std::string("bad escape '\\") + esc + "'");
      }
    }
    return Err("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string lexeme = text_.substr(start, pos_ - start);
    if (lexeme.empty() || lexeme == "-") return Err("malformed number");
    errno = 0;
    char* end = nullptr;
    if (integral) {
      const long long value = std::strtoll(lexeme.c_str(), &end, 10);
      if (errno == ERANGE || end != lexeme.c_str() + lexeme.size()) {
        return Err("integer out of range: " + lexeme);
      }
      return JsonValue(static_cast<int64_t>(value));
    }
    const double value = std::strtod(lexeme.c_str(), &end);
    if (end != lexeme.c_str() + lexeme.size() || !std::isfinite(value)) {
      return Err("malformed number: " + lexeme);
    }
    return JsonValue(value);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue value) {
  kind_ = Kind::kObject;
  object_[key] = std::move(value);
  return *this;
}

JsonValue& JsonValue::Append(JsonValue value) {
  kind_ = Kind::kArray;
  array_.push_back(std::move(value));
  return *this;
}

std::string JsonValue::Serialize() const {
  std::string out;
  switch (kind_) {
    case Kind::kNull:
      out = "null";
      break;
    case Kind::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      out = std::to_string(int_);
      break;
    case Kind::kDouble: {
      if (!std::isfinite(double_)) {
        out = "null";
        break;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", double_);
      out = buf;
      break;
    }
    case Kind::kString:
      EscapeTo(string_, &out);
      break;
    case Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& item : array_) {
        if (!first) out.push_back(',');
        first = false;
        out += item.Serialize();
      }
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out.push_back(',');
        first = false;
        EscapeTo(key, &out);
        out.push_back(':');
        out += value.Serialize();
      }
      out.push_back('}');
      break;
    }
  }
  return out;
}

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return Parser(text).Run();
}

Result<std::string> GetString(const JsonValue& object,
                              const std::string& key) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) {
    return Status::InvalidArgument("missing field '" + key + "'");
  }
  if (!value->is_string()) {
    return Status::InvalidArgument("field '" + key + "' must be a string");
  }
  return value->string_value();
}

Result<std::string> GetStringOr(const JsonValue& object,
                                const std::string& key,
                                std::string fallback) {
  if (object.Find(key) == nullptr) return fallback;
  return GetString(object, key);
}

Result<int64_t> GetInt(const JsonValue& object, const std::string& key) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) {
    return Status::InvalidArgument("missing field '" + key + "'");
  }
  if (!value->is_int()) {
    return Status::InvalidArgument("field '" + key +
                                   "' must be an integer");
  }
  return value->int_value();
}

Result<int64_t> GetIntOr(const JsonValue& object, const std::string& key,
                         int64_t fallback) {
  if (object.Find(key) == nullptr) return fallback;
  return GetInt(object, key);
}

Result<double> GetDoubleOr(const JsonValue& object, const std::string& key,
                           double fallback) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) return fallback;
  if (!value->is_number()) {
    return Status::InvalidArgument("field '" + key + "' must be a number");
  }
  return value->number_value();
}

Result<bool> GetBoolOr(const JsonValue& object, const std::string& key,
                       bool fallback) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) return fallback;
  if (!value->is_bool()) {
    return Status::InvalidArgument("field '" + key + "' must be a boolean");
  }
  return value->bool_value();
}

}  // namespace tpcp
