// Minimal strict JSON for the tpcpd wire protocol (server/wire.h).
//
// The daemon speaks length-prefixed JSON frames; this is the value model
// and the parser/serializer behind them. It is deliberately small — the
// protocol uses flat objects of strings, numbers, booleans and one level
// of nesting for options maps — and deliberately strict: a frame either
// parses completely (one JSON value, whole input consumed) or is rejected
// as InvalidArgument, so a malformed client can never half-configure a
// job. Numbers keep their integer identity when they have one (seeds and
// byte budgets are 64-bit; doubles would silently round them).

#ifndef TPCP_SERVER_JSON_H_
#define TPCP_SERVER_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace tpcp {

/// One JSON value. Value-semantic tree; objects keep key order sorted
/// (std::map) so serialization is deterministic.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}
  JsonValue(int64_t value) : kind_(Kind::kInt), int_(value) {}
  JsonValue(int value) : kind_(Kind::kInt), int_(value) {}
  JsonValue(uint64_t value)
      : kind_(Kind::kInt), int_(static_cast<int64_t>(value)) {}
  JsonValue(double value) : kind_(Kind::kDouble), double_(value) {}
  JsonValue(std::string value)
      : kind_(Kind::kString), string_(std::move(value)) {}
  JsonValue(const char* value) : kind_(Kind::kString), string_(value) {}

  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  /// Integer value (kInt only; a kDouble is not silently truncated).
  int64_t int_value() const { return int_; }
  /// Numeric value of either number kind.
  double number_value() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  std::vector<JsonValue>& array_items() { return array_; }
  const std::map<std::string, JsonValue>& object_items() const {
    return object_;
  }

  /// Object field access: the value at `key`, or nullptr when absent (or
  /// when this value is not an object).
  const JsonValue* Find(const std::string& key) const;

  /// Object/array builders.
  JsonValue& Set(const std::string& key, JsonValue value);
  JsonValue& Append(JsonValue value);

  /// Compact serialization (no whitespace, sorted object keys, strings
  /// escaped; non-finite doubles serialize as null).
  std::string Serialize() const;

  /// Strict parse: exactly one JSON value spanning the whole input
  /// (surrounding whitespace allowed). InvalidArgument on anything else —
  /// trailing bytes, unterminated strings, bad escapes, nesting deeper
  /// than 32, numbers out of range.
  static Result<JsonValue> Parse(const std::string& text);

 private:
  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

// ---- typed field accessors -------------------------------------------------
//
// Protocol handlers read request fields through these: a missing or
// wrong-type field is a clean InvalidArgument naming the field, never a
// crash or a default silently standing in for a typo.

/// `object[key]` as a string. InvalidArgument when absent or not a string.
Result<std::string> GetString(const JsonValue& object, const std::string& key);
/// `object[key]` as a string, or `fallback` when the key is absent.
Result<std::string> GetStringOr(const JsonValue& object,
                                const std::string& key,
                                std::string fallback);
/// `object[key]` as an integer. InvalidArgument when absent, not a number,
/// or not integral.
Result<int64_t> GetInt(const JsonValue& object, const std::string& key);
/// `object[key]` as an integer, or `fallback` when the key is absent.
Result<int64_t> GetIntOr(const JsonValue& object, const std::string& key,
                         int64_t fallback);
/// `object[key]` as a double, or `fallback` when the key is absent.
Result<double> GetDoubleOr(const JsonValue& object, const std::string& key,
                           double fallback);
/// `object[key]` as a bool, or `fallback` when the key is absent.
Result<bool> GetBoolOr(const JsonValue& object, const std::string& key,
                       bool fallback);

}  // namespace tpcp

#endif  // TPCP_SERVER_JSON_H_
