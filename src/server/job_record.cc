#include "server/job_record.h"

#include <cstdio>
#include <sstream>
#include <vector>

#include "core/names.h"
#include "util/parse.h"

namespace tpcp {

namespace {

/// Values travel one per whitespace-delimited token; escape the bytes
/// that would break that (and '%' itself).
std::string EscapeValue(const std::string& value) {
  std::string out;
  for (const char c : value) {
    if (c == ' ' || c == '%' || c == '\n' || c == '\r' || c == '\t') {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

Result<std::string> UnescapeValue(const std::string& value) {
  std::string out;
  for (size_t i = 0; i < value.size(); ++i) {
    if (value[i] != '%') {
      out.push_back(value[i]);
      continue;
    }
    if (i + 2 >= value.size()) {
      return Status::Corruption("truncated %-escape in job record value");
    }
    unsigned code = 0;
    for (int k = 1; k <= 2; ++k) {
      const char h = value[i + k];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code |= static_cast<unsigned>(h - 'a' + 10);
      } else {
        return Status::Corruption("bad %-escape in job record value");
      }
    }
    out.push_back(static_cast<char>(code));
    i += 2;
  }
  return out;
}

std::string FormatDouble(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

Result<bool> ParseBoolValue(const std::string& key,
                            const std::string& value) {
  if (value == "1" || value == "true") return true;
  if (value == "0" || value == "false") return false;
  return Status::InvalidArgument("option '" + key +
                                 "' must be a boolean (0/1/true/false)");
}

void EmitField(const std::string& key, const std::string& value,
               std::string* out) {
  *out += key;
  out->push_back(' ');
  *out += EscapeValue(value);
  out->push_back('\n');
}

Status SetIntField(const std::string& key, const std::string& value,
                   int64_t* out) {
  const Result<int64_t> parsed = ParseInt64(value);
  if (!parsed.ok()) {
    return Status::InvalidArgument("option '" + key +
                                   "' must be an integer: '" + value + "'");
  }
  *out = *parsed;
  return Status::OK();
}

}  // namespace

const char* ServerJobStateName(ServerJobState state) {
  switch (state) {
    case ServerJobState::kQueued:
      return "queued";
    case ServerJobState::kRunning:
      return "running";
    case ServerJobState::kPreempted:
      return "preempted";
    case ServerJobState::kSucceeded:
      return "succeeded";
    case ServerJobState::kFailed:
      return "failed";
    case ServerJobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

Result<ServerJobState> ServerJobStateFromName(const std::string& name) {
  for (const ServerJobState state :
       {ServerJobState::kQueued, ServerJobState::kRunning,
        ServerJobState::kPreempted, ServerJobState::kSucceeded,
        ServerJobState::kFailed, ServerJobState::kCancelled}) {
    if (name == ServerJobStateName(state)) return state;
  }
  return Status::InvalidArgument("unknown job state '" + name + "'");
}

std::string EncodeServerJobRecord(const ServerJobRecord& record) {
  std::string out = "tpcpd-job 1\n";
  EmitField("id", std::to_string(record.id), &out);
  EmitField("tenant", record.tenant, &out);
  EmitField("name", record.name, &out);
  EmitField("priority", std::to_string(record.priority), &out);
  EmitField("seq", std::to_string(record.seq), &out);
  EmitField("state", ServerJobStateName(record.state), &out);
  EmitField("preemptions", std::to_string(record.preemptions), &out);
  EmitField("resumed", record.resumed ? "1" : "0", &out);
  if (!record.detail.empty()) EmitField("detail", record.detail, &out);
  EmitField("fit", FormatDouble(record.fit), &out);
  EmitField("solver", record.solver, &out);
  EmitField("session_uri", record.session_uri, &out);
  EmitField("budget_buffer", std::to_string(record.budget_buffer_bytes),
            &out);
  EmitField("budget_threads", std::to_string(record.budget_threads), &out);
  for (const auto& [key, value] : record.options) {
    out += "opt " + key + " " + EscapeValue(value) + "\n";
  }
  for (const auto& [key, value] : record.params) {
    out += "param " + key + " " + EscapeValue(value) + "\n";
  }
  out += "end\n";
  return out;
}

Result<ServerJobRecord> DecodeServerJobRecord(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "tpcpd-job 1") {
    return Status::Corruption("job record missing 'tpcpd-job 1' header");
  }
  ServerJobRecord record;
  record.solver.clear();
  bool ended = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line == "end") {
      ended = true;
      break;
    }
    const size_t sp = line.find(' ');
    if (sp == std::string::npos) {
      return Status::Corruption("malformed job record line: '" + line + "'");
    }
    const std::string key = line.substr(0, sp);
    std::string raw = line.substr(sp + 1);
    if (key == "opt" || key == "param") {
      const size_t sp2 = raw.find(' ');
      if (sp2 == std::string::npos) {
        return Status::Corruption("malformed job record line: '" + line +
                                  "'");
      }
      const std::string sub = raw.substr(0, sp2);
      TPCP_ASSIGN_OR_RETURN(const std::string value,
                            UnescapeValue(raw.substr(sp2 + 1)));
      (key == "opt" ? record.options : record.params)[sub] = value;
      continue;
    }
    TPCP_ASSIGN_OR_RETURN(const std::string value, UnescapeValue(raw));
    int64_t number = 0;
    if (key == "id") {
      TPCP_RETURN_IF_ERROR(SetIntField(key, value, &record.id));
    } else if (key == "tenant") {
      record.tenant = value;
    } else if (key == "name") {
      record.name = value;
    } else if (key == "priority") {
      TPCP_RETURN_IF_ERROR(SetIntField(key, value, &number));
      record.priority = static_cast<int>(number);
    } else if (key == "seq") {
      TPCP_RETURN_IF_ERROR(SetIntField(key, value, &record.seq));
    } else if (key == "state") {
      TPCP_ASSIGN_OR_RETURN(record.state, ServerJobStateFromName(value));
    } else if (key == "preemptions") {
      TPCP_RETURN_IF_ERROR(SetIntField(key, value, &number));
      record.preemptions = static_cast<int>(number);
    } else if (key == "resumed") {
      TPCP_ASSIGN_OR_RETURN(record.resumed, ParseBoolValue(key, value));
    } else if (key == "detail") {
      record.detail = value;
    } else if (key == "fit") {
      TPCP_ASSIGN_OR_RETURN(record.fit, ParseDouble(value));
    } else if (key == "solver") {
      record.solver = value;
    } else if (key == "session_uri") {
      record.session_uri = value;
    } else if (key == "budget_buffer") {
      TPCP_RETURN_IF_ERROR(SetIntField(key, value, &number));
      record.budget_buffer_bytes = static_cast<uint64_t>(number);
    } else if (key == "budget_threads") {
      TPCP_RETURN_IF_ERROR(SetIntField(key, value, &number));
      record.budget_threads = static_cast<int>(number);
    } else {
      // Unknown fields are skipped so older daemons read newer records.
    }
  }
  if (!ended) {
    return Status::Corruption("job record truncated (no 'end' trailer)");
  }
  if (record.id <= 0 || record.tenant.empty() || record.solver.empty()) {
    return Status::Corruption("job record missing id/tenant/solver");
  }
  return record;
}

std::map<std::string, std::string> OptionsToMap(
    const TwoPhaseCpOptions& options) {
  std::map<std::string, std::string> map;
  map["rank"] = std::to_string(options.rank);
  map["phase1_max_iterations"] =
      std::to_string(options.phase1_max_iterations);
  map["phase1_fit_tolerance"] = FormatDouble(options.phase1_fit_tolerance);
  map["phase1_ridge"] = FormatDouble(options.phase1_ridge);
  map["init"] = InitMethodName(options.init);
  map["seed"] = std::to_string(options.seed);
  map["num_threads"] = std::to_string(options.num_threads);
  map["schedule"] = ScheduleTypeName(options.schedule);
  map["policy"] = PolicyTypeName(options.policy);
  map["buffer_fraction"] = FormatDouble(options.buffer_fraction);
  map["buffer_bytes"] = std::to_string(options.buffer_bytes);
  map["max_virtual_iterations"] =
      std::to_string(options.max_virtual_iterations);
  map["fit_tolerance"] = FormatDouble(options.fit_tolerance);
  map["refinement_ridge"] = FormatDouble(options.refinement_ridge);
  map["resume_phase2"] = options.resume_phase2 ? "1" : "0";
  map["prefetch_depth"] = std::to_string(options.prefetch_depth);
  map["io_threads"] = std::to_string(options.io_threads);
  map["compute_threads"] = std::to_string(options.compute_threads);
  map["plan_reorder"] = options.plan_reorder ? "1" : "0";
  map["plan_reorder_auto"] = options.plan_reorder_auto ? "1" : "0";
  map["plan_reorder_window"] = std::to_string(options.plan_reorder_window);
  map["shard_slab_blocks"] = std::to_string(options.shard_slab_blocks);
  map["kernel_fma"] = options.kernel_fma ? "1" : "0";
  map["policy_victim_hints"] = options.policy_victim_hints ? "1" : "0";
  map["max_seconds"] = FormatDouble(options.max_seconds);
  return map;
}

Status ApplyOption(const std::string& key, const std::string& value,
                   TwoPhaseCpOptions* options) {
  int64_t number = 0;
  if (key == "rank") {
    return SetIntField(key, value, &options->rank);
  }
  if (key == "phase1_max_iterations") {
    TPCP_RETURN_IF_ERROR(SetIntField(key, value, &number));
    options->phase1_max_iterations = static_cast<int>(number);
    return Status::OK();
  }
  if (key == "phase1_fit_tolerance") {
    TPCP_ASSIGN_OR_RETURN(options->phase1_fit_tolerance, ParseDouble(value));
    return Status::OK();
  }
  if (key == "phase1_ridge") {
    TPCP_ASSIGN_OR_RETURN(options->phase1_ridge, ParseDouble(value));
    return Status::OK();
  }
  if (key == "init") {
    TPCP_ASSIGN_OR_RETURN(options->init, InitMethodFromName(value));
    return Status::OK();
  }
  if (key == "seed") {
    TPCP_RETURN_IF_ERROR(SetIntField(key, value, &number));
    options->seed = static_cast<uint64_t>(number);
    return Status::OK();
  }
  if (key == "num_threads") {
    TPCP_RETURN_IF_ERROR(SetIntField(key, value, &number));
    options->num_threads = static_cast<int>(number);
    return Status::OK();
  }
  if (key == "schedule") {
    TPCP_ASSIGN_OR_RETURN(options->schedule, ScheduleTypeFromName(value));
    return Status::OK();
  }
  if (key == "policy") {
    TPCP_ASSIGN_OR_RETURN(options->policy, PolicyTypeFromName(value));
    return Status::OK();
  }
  if (key == "buffer_fraction") {
    TPCP_ASSIGN_OR_RETURN(options->buffer_fraction, ParseDouble(value));
    return Status::OK();
  }
  if (key == "buffer_bytes") {
    TPCP_RETURN_IF_ERROR(SetIntField(key, value, &number));
    if (number < 0) {
      return Status::InvalidArgument("buffer_bytes must be >= 0");
    }
    options->buffer_bytes = static_cast<uint64_t>(number);
    return Status::OK();
  }
  if (key == "max_virtual_iterations") {
    TPCP_RETURN_IF_ERROR(SetIntField(key, value, &number));
    options->max_virtual_iterations = static_cast<int>(number);
    return Status::OK();
  }
  if (key == "fit_tolerance") {
    TPCP_ASSIGN_OR_RETURN(options->fit_tolerance, ParseDouble(value));
    return Status::OK();
  }
  if (key == "refinement_ridge") {
    TPCP_ASSIGN_OR_RETURN(options->refinement_ridge, ParseDouble(value));
    return Status::OK();
  }
  if (key == "resume_phase2") {
    TPCP_ASSIGN_OR_RETURN(options->resume_phase2, ParseBoolValue(key, value));
    return Status::OK();
  }
  if (key == "prefetch_depth") {
    TPCP_RETURN_IF_ERROR(SetIntField(key, value, &number));
    options->prefetch_depth = static_cast<int>(number);
    return Status::OK();
  }
  if (key == "io_threads") {
    TPCP_RETURN_IF_ERROR(SetIntField(key, value, &number));
    options->io_threads = static_cast<int>(number);
    return Status::OK();
  }
  if (key == "compute_threads") {
    TPCP_RETURN_IF_ERROR(SetIntField(key, value, &number));
    options->compute_threads = static_cast<int>(number);
    return Status::OK();
  }
  if (key == "plan_reorder") {
    TPCP_ASSIGN_OR_RETURN(options->plan_reorder, ParseBoolValue(key, value));
    return Status::OK();
  }
  if (key == "plan_reorder_auto") {
    TPCP_ASSIGN_OR_RETURN(options->plan_reorder_auto,
                          ParseBoolValue(key, value));
    return Status::OK();
  }
  if (key == "plan_reorder_window") {
    return SetIntField(key, value, &options->plan_reorder_window);
  }
  if (key == "shard_slab_blocks") {
    return SetIntField(key, value, &options->shard_slab_blocks);
  }
  if (key == "kernel_fma") {
    TPCP_ASSIGN_OR_RETURN(options->kernel_fma, ParseBoolValue(key, value));
    return Status::OK();
  }
  if (key == "policy_victim_hints") {
    TPCP_ASSIGN_OR_RETURN(options->policy_victim_hints,
                          ParseBoolValue(key, value));
    return Status::OK();
  }
  if (key == "max_seconds") {
    TPCP_ASSIGN_OR_RETURN(options->max_seconds, ParseDouble(value));
    return Status::OK();
  }
  return Status::InvalidArgument("unknown option '" + key + "'");
}

Result<TwoPhaseCpOptions> OptionsFromMap(
    const std::map<std::string, std::string>& map) {
  TwoPhaseCpOptions options;
  for (const auto& [key, value] : map) {
    TPCP_RETURN_IF_ERROR(ApplyOption(key, value, &options));
  }
  return options;
}

}  // namespace tpcp
