// Socket front door for tpcpd, and the matching thin client.
//
// TpcpdServer owns a listening TCP socket on 127.0.0.1 and a
// thread-per-connection accept loop; each connection speaks the frame
// codec (server/wire.h) and hands every decoded payload to
// Tpcpd::HandleRequest. All protocol logic lives in the daemon — this
// layer only moves frames, which is why the protocol tests don't need it.
//
// A malformed frame (bad length prefix) poisons the connection: the
// server sends one final error frame and closes. A malformed *payload*
// (bad JSON, unknown command) is an ordinary error response and the
// connection stays usable.
//
// Frame compression is negotiated per connection: a client may open with
//   {"cmd":"hello","compress":"deflate"}
// which the connection layer answers itself (it never reaches the
// daemon) with {"ok":true,"compress":"deflate"} when this build carries
// zlib — from then on both directions may send deflate frames
// (server/wire.h) for payloads above the size threshold — or
// {"ok":true,"compress":"none"} otherwise. Clients that never say hello,
// and servers that predate it (they answer with an unknown-command
// error), keep speaking plain frames: the negotiation is strictly
// opt-in on both ends.
//
// The hello also carries tenant authentication:
//   {"cmd":"hello","tenant":"acme","token":"s3cret"}
// On success ({"ok":true,"tenant":"acme"}) the connection is bound to
// that tenant: every later request on it reaches the daemon with the
// authenticated identity, which token-protected tenants require. A bad
// token or unknown tenant gets a clean {"ok":false,...} and the
// connection stays open but unauthenticated. Tenants configured without
// a token remain open to every connection.

#ifndef TPCP_SERVER_NET_H_
#define TPCP_SERVER_NET_H_

#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/daemon.h"
#include "server/json.h"
#include "server/wire.h"
#include "util/retry.h"
#include "util/status.h"

namespace tpcp {

class TpcpdServer {
 public:
  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port — see
  /// bound_port()) and starts accepting. `daemon` must outlive the
  /// server.
  static Result<std::unique_ptr<TpcpdServer>> Listen(Tpcpd* daemon,
                                                     int port);

  /// Stops accepting, closes every connection and joins all threads.
  ~TpcpdServer();

  TpcpdServer(const TpcpdServer&) = delete;
  TpcpdServer& operator=(const TpcpdServer&) = delete;

  int bound_port() const { return bound_port_; }

 private:
  TpcpdServer() = default;

  void AcceptLoop();
  void ServeConnection(int fd);

  Tpcpd* daemon_ = nullptr;
  int listen_fd_ = -1;
  int bound_port_ = 0;

  std::mutex mu_;
  bool stopping_ = false;
  std::vector<int> connection_fds_;
  std::vector<std::thread> connection_threads_;
  std::thread accept_thread_;
};

/// Blocking client: one Call is one request frame out, one response
/// frame back. Not thread-safe; use one client per thread.
class TpcpdClient {
 public:
  /// Connects to `host:port`, retrying refused/transient connects with
  /// the shared backoff policy (a daemon that is still binding its socket
  /// looks exactly like a transient fault). `retry.max_attempts = 1`
  /// restores single-shot connects.
  static Result<std::unique_ptr<TpcpdClient>> Connect(
      const std::string& host, int port, const RetryPolicy& retry = {});
  ~TpcpdClient();

  TpcpdClient(const TpcpdClient&) = delete;
  TpcpdClient& operator=(const TpcpdClient&) = delete;

  /// Sends `request` and returns the parsed response object. IOError when
  /// the connection drops; InvalidArgument when the server's response is
  /// not valid protocol (never expected).
  Result<JsonValue> Call(const JsonValue& request);

  /// Offers the server deflate frame compression (the hello above).
  /// Returns true when granted — large frames then travel compressed in
  /// both directions. False (no error) when the server declined or
  /// predates the hello. Call at most once, before other traffic.
  Result<bool> NegotiateCompression();

  /// Authenticates this connection as `tenant` (hello with token).
  /// InvalidArgument when the server rejects the credentials — the
  /// connection stays usable, unauthenticated.
  Status Authenticate(const std::string& tenant, const std::string& token);

  bool compression_enabled() const { return compress_; }

 private:
  explicit TpcpdClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  /// Persistent across Calls: with compression on, response bytes buffered
  /// past one frame boundary must not be dropped between calls.
  FrameDecoder decoder_;
  bool compress_ = false;
};

}  // namespace tpcp

#endif  // TPCP_SERVER_NET_H_
