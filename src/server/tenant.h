// Tenants of the tpcpd daemon.
//
// A tenant is a named principal with its own storage root and a resource
// quota. Every job a tenant submits is charged a budget (buffer bytes +
// worker threads) against that quota by the daemon's admission control:
// a submit whose budget can never fit its tenant's quota is rejected
// outright, and a job only starts running when its budget fits both the
// tenant's remaining quota and the daemon's global totals — so the sum of
// running budgets provably never exceeds either bound.

#ifndef TPCP_SERVER_TENANT_H_
#define TPCP_SERVER_TENANT_H_

#include <cstdint>
#include <string>

#include "core/config.h"
#include "util/status.h"

namespace tpcp {

/// Per-tenant resource ceiling.
struct TenantQuota {
  /// Aggregate Phase-2 buffer bytes across the tenant's running jobs.
  uint64_t buffer_bytes = 64ull << 20;
  /// Aggregate worker threads across the tenant's running jobs.
  int threads = 4;
  /// Running-job count ceiling.
  int max_concurrent_jobs = 2;
};

/// One registered tenant.
struct TenantConfig {
  std::string name;
  /// Storage root; each job's store lives at `<storage_uri>/<job dir>`
  /// (posix://) or in a daemon-held env (mem://).
  std::string storage_uri = "mem://";
  /// Shared-secret auth token. Empty: the tenant is open (any connection
  /// may act on it — the pre-token behavior). Non-empty: job-addressed
  /// commands for this tenant are rejected unless the connection
  /// authenticated with this exact token in its hello.
  std::string token;
  TenantQuota quota;
};

/// What one admitted job charges against its tenant's quota and the
/// daemon totals while running.
struct JobBudget {
  uint64_t buffer_bytes = 0;
  int threads = 0;
};

/// Aggregate usage of a tenant (or of the whole daemon).
struct ResourceUsage {
  uint64_t buffer_bytes = 0;
  int threads = 0;
  int running_jobs = 0;

  void Charge(const JobBudget& budget) {
    buffer_bytes += budget.buffer_bytes;
    threads += budget.threads;
    ++running_jobs;
  }
  void Release(const JobBudget& budget) {
    buffer_bytes -= budget.buffer_bytes;
    threads -= budget.threads;
    --running_jobs;
  }
};

/// The budget a job with these options is charged. Buffer: an explicit
/// buffer_bytes, else the full tenant buffer quota (a fraction-sized
/// buffer resolves only against the store at run time, so admission
/// charges conservatively). Threads: the larger of the Phase-1 pool and
/// the Phase-2 compute + prefetch-I/O pools.
JobBudget ComputeJobBudget(const TwoPhaseCpOptions& options,
                           const TenantQuota& quota);

/// True when `budget` fits inside `quota` on every axis (ignoring current
/// usage) — the submit-time sanity bound.
bool BudgetFitsQuota(const JobBudget& budget, const TenantQuota& quota);

/// True when `budget` can start now given the tenant's current usage.
bool CanStart(const JobBudget& budget, const ResourceUsage& usage,
              const TenantQuota& quota);

/// Parses a `name,storage_uri[,key=value...]` tenant spec (the tpcpd
/// --tenant flag). Keys: buffer_mb, threads, max_jobs, token.
Result<TenantConfig> ParseTenantSpec(const std::string& spec);

}  // namespace tpcp

#endif  // TPCP_SERVER_TENANT_H_
