#include "server/wire.h"

namespace tpcp {

Result<std::string> EncodeFrame(const std::string& payload) {
  if (payload.empty()) {
    return Status::InvalidArgument("cannot encode an empty frame");
  }
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
        "-byte limit");
  }
  const uint32_t length = static_cast<uint32_t>(payload.size());
  std::string frame;
  frame.reserve(4 + payload.size());
  frame.push_back(static_cast<char>((length >> 24) & 0xff));
  frame.push_back(static_cast<char>((length >> 16) & 0xff));
  frame.push_back(static_cast<char>((length >> 8) & 0xff));
  frame.push_back(static_cast<char>(length & 0xff));
  frame += payload;
  return frame;
}

Status FrameDecoder::Feed(const char* data, size_t size) {
  if (!error_.ok()) return error_;
  buffer_.append(data, size);
  // Peel off every complete frame currently buffered.
  while (buffer_.size() >= 4) {
    const uint32_t length =
        (static_cast<uint32_t>(static_cast<unsigned char>(buffer_[0]))
         << 24) |
        (static_cast<uint32_t>(static_cast<unsigned char>(buffer_[1]))
         << 16) |
        (static_cast<uint32_t>(static_cast<unsigned char>(buffer_[2]))
         << 8) |
        static_cast<uint32_t>(static_cast<unsigned char>(buffer_[3]));
    if (length == 0) {
      error_ = Status::InvalidArgument("zero-length frame");
      return error_;
    }
    if (length > kMaxFrameBytes) {
      error_ = Status::InvalidArgument(
          "frame length " + std::to_string(length) + " exceeds the " +
          std::to_string(kMaxFrameBytes) + "-byte limit");
      return error_;
    }
    if (buffer_.size() < 4 + static_cast<size_t>(length)) break;
    ready_.push_back(buffer_.substr(4, length));
    buffer_.erase(0, 4 + static_cast<size_t>(length));
  }
  return Status::OK();
}

bool FrameDecoder::Next(std::string* payload) {
  if (ready_.empty()) return false;
  *payload = std::move(ready_.front());
  ready_.erase(ready_.begin());
  return true;
}

}  // namespace tpcp
