#include "server/wire.h"

#if defined(TPCP_HAVE_ZLIB)
#include <zlib.h>
#endif

namespace tpcp {
namespace {

constexpr uint32_t kCompressedFlag = 0x80000000u;

void AppendBe32(uint32_t value, std::string* out) {
  out->push_back(static_cast<char>((value >> 24) & 0xff));
  out->push_back(static_cast<char>((value >> 16) & 0xff));
  out->push_back(static_cast<char>((value >> 8) & 0xff));
  out->push_back(static_cast<char>(value & 0xff));
}

uint32_t ReadBe32(const std::string& buffer, size_t offset) {
  return (static_cast<uint32_t>(
              static_cast<unsigned char>(buffer[offset]))
          << 24) |
         (static_cast<uint32_t>(
              static_cast<unsigned char>(buffer[offset + 1]))
          << 16) |
         (static_cast<uint32_t>(
              static_cast<unsigned char>(buffer[offset + 2]))
          << 8) |
         static_cast<uint32_t>(
             static_cast<unsigned char>(buffer[offset + 3]));
}

#if defined(TPCP_HAVE_ZLIB)
/// Raw-deflate `input`. Empty string when deflate cannot shrink it below
/// `max_out` bytes (i.e. compression is not worth it).
std::string DeflateBytes(const std::string& input, size_t max_out) {
  uLongf bound = compressBound(static_cast<uLong>(input.size()));
  std::string out(static_cast<size_t>(bound), '\0');
  const int rc = compress2(
      reinterpret_cast<Bytef*>(&out[0]), &bound,
      reinterpret_cast<const Bytef*>(input.data()),
      static_cast<uLong>(input.size()), Z_DEFAULT_COMPRESSION);
  if (rc != Z_OK || static_cast<size_t>(bound) >= max_out) return {};
  out.resize(static_cast<size_t>(bound));
  return out;
}

Result<std::string> InflateBytes(const std::string& input,
                                 uint32_t expected_size) {
  std::string out(expected_size, '\0');
  uLongf out_size = expected_size;
  const int rc = uncompress(
      reinterpret_cast<Bytef*>(&out[0]), &out_size,
      reinterpret_cast<const Bytef*>(input.data()),
      static_cast<uLong>(input.size()));
  if (rc != Z_OK || out_size != expected_size) {
    return Status::InvalidArgument(
        "compressed frame does not inflate to its declared size");
  }
  return out;
}
#endif  // TPCP_HAVE_ZLIB

}  // namespace

bool DeflateSupported() {
#if defined(TPCP_HAVE_ZLIB)
  return true;
#else
  return false;
#endif
}

Result<std::string> EncodeFrame(const std::string& payload) {
  if (payload.empty()) {
    return Status::InvalidArgument("cannot encode an empty frame");
  }
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
        "-byte limit");
  }
  std::string frame;
  frame.reserve(4 + payload.size());
  AppendBe32(static_cast<uint32_t>(payload.size()), &frame);
  frame += payload;
  return frame;
}

Result<std::string> EncodeFrameDeflate(const std::string& payload,
                                       size_t threshold) {
#if defined(TPCP_HAVE_ZLIB)
  if (payload.size() >= threshold && payload.size() <= kMaxFrameBytes &&
      payload.size() > 8) {
    // Only worth the flag bit when deflate beats the plain encoding
    // (compressed bytes + the 4-byte uncompressed-size word).
    const std::string deflated = DeflateBytes(payload, payload.size() - 4);
    if (!deflated.empty()) {
      std::string frame;
      frame.reserve(8 + deflated.size());
      AppendBe32(kCompressedFlag |
                     static_cast<uint32_t>(deflated.size()),
                 &frame);
      AppendBe32(static_cast<uint32_t>(payload.size()), &frame);
      frame += deflated;
      return frame;
    }
  }
#else
  (void)threshold;
#endif
  return EncodeFrame(payload);
}

Status FrameDecoder::Feed(const char* data, size_t size) {
  if (!error_.ok()) return error_;
  buffer_.append(data, size);
  // Peel off every complete frame currently buffered.
  while (buffer_.size() >= 4) {
    const uint32_t word = ReadBe32(buffer_, 0);
    const bool compressed = (word & kCompressedFlag) != 0;
    const uint32_t length = word & ~kCompressedFlag;
    if (compressed && (!deflate_enabled_ || !DeflateSupported())) {
      // Without negotiation the flag bit is just an absurd length — keep
      // the pre-compression error contract.
      error_ = Status::InvalidArgument(
          "frame length " + std::to_string(word) + " exceeds the " +
          std::to_string(kMaxFrameBytes) + "-byte limit");
      return error_;
    }
    if (length == 0) {
      error_ = Status::InvalidArgument("zero-length frame");
      return error_;
    }
    if (length > kMaxFrameBytes) {
      error_ = Status::InvalidArgument(
          "frame length " + std::to_string(length) + " exceeds the " +
          std::to_string(kMaxFrameBytes) + "-byte limit");
      return error_;
    }
    if (!compressed) {
      if (buffer_.size() < 4 + static_cast<size_t>(length)) break;
      ready_.push_back(buffer_.substr(4, length));
      buffer_.erase(0, 4 + static_cast<size_t>(length));
      continue;
    }
#if defined(TPCP_HAVE_ZLIB)
    // Compressed frame: [flagged length][4-byte uncompressed size][bytes].
    if (buffer_.size() < 8) break;
    const uint32_t uncompressed = ReadBe32(buffer_, 4);
    if (uncompressed == 0 || uncompressed > kMaxFrameBytes) {
      error_ = Status::InvalidArgument(
          "compressed frame declares an invalid uncompressed size of " +
          std::to_string(uncompressed) + " bytes");
      return error_;
    }
    if (buffer_.size() < 8 + static_cast<size_t>(length)) break;
    auto inflated = InflateBytes(buffer_.substr(8, length), uncompressed);
    if (!inflated.ok()) {
      error_ = inflated.status();
      return error_;
    }
    ready_.push_back(std::move(*inflated));
    buffer_.erase(0, 8 + static_cast<size_t>(length));
#endif
  }
  return Status::OK();
}

bool FrameDecoder::Next(std::string* payload) {
  if (ready_.empty()) return false;
  *payload = std::move(ready_.front());
  ready_.erase(ready_.begin());
  return true;
}

}  // namespace tpcp
