// Frame codec for the tpcpd wire protocol.
//
// Every message — request or response — travels as one frame:
//
//   [4-byte big-endian payload length][payload bytes]
//
// where the payload is one JSON object (server/json.h). The length
// prefix makes message boundaries explicit on a stream socket; the codec
// enforces a hard frame-size ceiling so a hostile or broken client can
// neither balloon daemon memory with one giant length word nor wedge a
// connection with a zero-length frame. Encoding and decoding are pure
// byte-string transforms, testable without any socket.

#ifndef TPCP_SERVER_WIRE_H_
#define TPCP_SERVER_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace tpcp {

/// Hard ceiling on a frame payload (1 MiB). Protocol messages are small
/// (a submit with a full options map is well under 4 KiB); anything
/// larger is a corrupt or hostile length prefix.
constexpr uint32_t kMaxFrameBytes = 1u << 20;

/// Wrap `payload` in a length-prefixed frame. InvalidArgument when the
/// payload is empty or exceeds kMaxFrameBytes.
Result<std::string> EncodeFrame(const std::string& payload);

/// Incremental frame decoder: feed raw bytes as they arrive, pop complete
/// payloads. Once a malformed prefix is seen (zero-length or oversized
/// frame) the decoder latches the error — the byte stream has no
/// recoverable resync point, so the connection must be dropped.
class FrameDecoder {
 public:
  /// Append raw bytes from the stream. Returns the latched error, if any.
  Status Feed(const char* data, size_t size);
  Status Feed(const std::string& data) {
    return Feed(data.data(), data.size());
  }

  /// Pop the next complete payload into `*payload`. Returns false when no
  /// complete frame is buffered (or the decoder is in the error state).
  bool Next(std::string* payload);

  /// True when a malformed prefix has been seen.
  bool failed() const { return !error_.ok(); }
  const Status& error() const { return error_; }

  /// True when the buffer holds a partial frame (useful for detecting
  /// truncated streams at connection close).
  bool has_partial() const { return !buffer_.empty(); }

 private:
  std::string buffer_;
  std::vector<std::string> ready_;
  Status error_ = Status::OK();
};

}  // namespace tpcp

#endif  // TPCP_SERVER_WIRE_H_
