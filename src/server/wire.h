// Frame codec for the tpcpd wire protocol.
//
// Every message — request or response — travels as one frame:
//
//   [4-byte big-endian payload length][payload bytes]
//
// where the payload is one JSON object (server/json.h). The length
// prefix makes message boundaries explicit on a stream socket; the codec
// enforces a hard frame-size ceiling so a hostile or broken client can
// neither balloon daemon memory with one giant length word nor wedge a
// connection with a zero-length frame. Encoding and decoding are pure
// byte-string transforms, testable without any socket.
//
// Large payloads may travel deflate-compressed when both ends negotiated
// it (a "compress":"deflate" field in the connection hello — see
// server/net.h). A compressed frame sets the top bit of the length word:
//
//   [4-byte BE: 0x80000000 | deflate-byte count]
//   [4-byte BE uncompressed payload length][deflate bytes]
//
// Both the deflate-byte count and the declared uncompressed length obey
// the kMaxFrameBytes ceiling. A decoder that has not been told the peer
// negotiated compression treats the flag bit as a malformed length —
// pre-compression servers and clients are therefore wire-compatible by
// construction.

#ifndef TPCP_SERVER_WIRE_H_
#define TPCP_SERVER_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace tpcp {

/// Hard ceiling on a frame payload (1 MiB). Protocol messages are small
/// (a submit with a full options map is well under 4 KiB); anything
/// larger is a corrupt or hostile length prefix.
constexpr uint32_t kMaxFrameBytes = 1u << 20;

/// Frames at or above this payload size are worth compressing; smaller
/// ones ship plain (the deflate header would eat the gain).
constexpr size_t kCompressThresholdBytes = 4096;

/// True when this build carries zlib (TPCP_HAVE_ZLIB); without it
/// compression is never offered, never accepted.
bool DeflateSupported();

/// Wrap `payload` in a length-prefixed frame. InvalidArgument when the
/// payload is empty or exceeds kMaxFrameBytes.
Result<std::string> EncodeFrame(const std::string& payload);

/// Like EncodeFrame, but emits a compressed frame when the payload is at
/// least `threshold` bytes, zlib is built in, AND deflate actually
/// shrinks it — otherwise the plain frame, byte-identical to
/// EncodeFrame's. Callers must only use this after the peer negotiated
/// "compress":"deflate".
Result<std::string> EncodeFrameDeflate(
    const std::string& payload,
    size_t threshold = kCompressThresholdBytes);

/// Incremental frame decoder: feed raw bytes as they arrive, pop complete
/// payloads. Once a malformed prefix is seen (zero-length or oversized
/// frame) the decoder latches the error — the byte stream has no
/// recoverable resync point, so the connection must be dropped.
class FrameDecoder {
 public:
  /// Append raw bytes from the stream. Returns the latched error, if any.
  Status Feed(const char* data, size_t size);
  Status Feed(const std::string& data) {
    return Feed(data.data(), data.size());
  }

  /// Pop the next complete payload into `*payload`. Returns false when no
  /// complete frame is buffered (or the decoder is in the error state).
  bool Next(std::string* payload);

  /// True when a malformed prefix has been seen.
  bool failed() const { return !error_.ok(); }
  const Status& error() const { return error_; }

  /// True when the buffer holds a partial frame (useful for detecting
  /// truncated streams at connection close).
  bool has_partial() const { return !buffer_.empty(); }

  /// Accept compressed frames from now on. Call only once the peer
  /// negotiated "compress":"deflate"; before that, the flag bit latches
  /// the usual malformed-length error.
  void EnableDeflate() { deflate_enabled_ = true; }
  bool deflate_enabled() const { return deflate_enabled_; }

 private:
  std::string buffer_;
  std::vector<std::string> ready_;
  Status error_ = Status::OK();
  bool deflate_enabled_ = false;
};

}  // namespace tpcp

#endif  // TPCP_SERVER_WIRE_H_
