#include "server/tenant.h"

#include <algorithm>
#include <vector>

#include "util/parse.h"

namespace tpcp {

JobBudget ComputeJobBudget(const TwoPhaseCpOptions& options,
                           const TenantQuota& quota) {
  JobBudget budget;
  budget.buffer_bytes =
      options.buffer_bytes > 0 ? options.buffer_bytes : quota.buffer_bytes;
  const int phase2_threads =
      options.compute_threads +
      (options.prefetch_depth > 0 ? options.io_threads : 0);
  budget.threads = std::max(std::max(options.num_threads, phase2_threads), 1);
  return budget;
}

bool BudgetFitsQuota(const JobBudget& budget, const TenantQuota& quota) {
  return budget.buffer_bytes <= quota.buffer_bytes &&
         budget.threads <= quota.threads && quota.max_concurrent_jobs >= 1;
}

bool CanStart(const JobBudget& budget, const ResourceUsage& usage,
              const TenantQuota& quota) {
  return usage.running_jobs < quota.max_concurrent_jobs &&
         usage.buffer_bytes + budget.buffer_bytes <= quota.buffer_bytes &&
         usage.threads + budget.threads <= quota.threads;
}

Result<TenantConfig> ParseTenantSpec(const std::string& spec) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (;;) {
    const size_t comma = spec.find(',', start);
    parts.push_back(spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (parts.size() < 2 || parts[0].empty() || parts[1].empty()) {
    return Status::InvalidArgument(
        "tenant spec must be name,storage_uri[,key=value...]: '" + spec +
        "'");
  }
  TenantConfig config;
  config.name = parts[0];
  config.storage_uri = parts[1];
  for (size_t i = 2; i < parts.size(); ++i) {
    const size_t eq = parts[i].find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("tenant spec option '" + parts[i] +
                                     "' is not key=value");
    }
    const std::string key = parts[i].substr(0, eq);
    const std::string value = parts[i].substr(eq + 1);
    if (key == "token") {
      if (value.empty()) {
        return Status::InvalidArgument("tenant token must be non-empty");
      }
      config.token = value;
      continue;
    }
    TPCP_ASSIGN_OR_RETURN(const int64_t number, ParseInt64(value));
    if (key == "buffer_mb") {
      if (number <= 0) {
        return Status::InvalidArgument("tenant buffer_mb must be positive");
      }
      config.quota.buffer_bytes = static_cast<uint64_t>(number) << 20;
    } else if (key == "threads") {
      if (number <= 0) {
        return Status::InvalidArgument("tenant threads must be positive");
      }
      config.quota.threads = static_cast<int>(number);
    } else if (key == "max_jobs") {
      if (number <= 0) {
        return Status::InvalidArgument("tenant max_jobs must be positive");
      }
      config.quota.max_concurrent_jobs = static_cast<int>(number);
    } else {
      return Status::InvalidArgument(
          "unknown tenant spec option '" + key +
          "' (choices: buffer_mb, threads, max_jobs, token)");
    }
  }
  return config;
}

}  // namespace tpcp
