#include "baselines/naive_oocp.h"

#include <cmath>

#include "core/cost_model.h"
#include "linalg/blas.h"
#include "linalg/cholesky.h"
#include "linalg/elementwise.h"
#include "tensor/mttkrp.h"
#include "util/stopwatch.h"

namespace tpcp {
namespace {

// Row slices of the global factors covering one block.
std::vector<Matrix> BlockFactorSlices(const GridPartition& grid,
                                      const BlockIndex& block,
                                      const std::vector<Matrix>& factors) {
  std::vector<Matrix> slices;
  slices.reserve(factors.size());
  for (int m = 0; m < grid.num_modes(); ++m) {
    const int64_t begin =
        grid.PartitionOffset(m, block[static_cast<size_t>(m)]);
    const int64_t end = begin + grid.PartitionSize(m, block[static_cast<size_t>(m)]);
    slices.push_back(factors[static_cast<size_t>(m)].RowSlice(begin, end));
  }
  return slices;
}

}  // namespace

Result<NaiveOocpResult> NaiveOutOfCoreCp(const BlockTensorStore& input,
                                         const NaiveOocpOptions& options) {
  Stopwatch watch;
  const GridPartition& grid = input.grid();
  const Shape& shape = grid.tensor_shape();
  const int n = shape.num_modes();

  NaiveOocpResult result;
  std::vector<Matrix> factors = RandomFactors(shape, options.rank,
                                              options.seed);
  std::vector<Matrix> grams;
  grams.reserve(static_cast<size_t>(n));
  for (const Matrix& f : factors) grams.push_back(Gram(f));

  // One streaming pass for ||X||^2.
  double x_norm_sq = 0.0;
  for (const BlockIndex& block : grid.AllBlocks()) {
    TPCP_ASSIGN_OR_RETURN(DenseTensor chunk, input.ReadBlock(block));
    x_norm_sq += chunk.SquaredNorm();
    result.bytes_streamed += CostModel::TensorBytes(chunk.shape());
  }

  double prev_fit = 0.0;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    for (int mode = 0; mode < n; ++mode) {
      // Streamed MTTKRP: accumulate block contributions into the global M.
      Matrix m(shape.dim(mode), options.rank);
      for (const BlockIndex& block : grid.AllBlocks()) {
        TPCP_ASSIGN_OR_RETURN(DenseTensor chunk, input.ReadBlock(block));
        result.bytes_streamed += CostModel::TensorBytes(chunk.shape());
        const std::vector<Matrix> slices =
            BlockFactorSlices(grid, block, factors);
        const Matrix partial = Mttkrp(chunk, slices, mode);
        const int64_t row0 =
            grid.PartitionOffset(mode, block[static_cast<size_t>(mode)]);
        for (int64_t r = 0; r < partial.rows(); ++r) {
          for (int64_t c = 0; c < partial.cols(); ++c) {
            m(row0 + r, c) += partial(r, c);
          }
        }
      }
      factors[static_cast<size_t>(mode)] = AlsFactorUpdate(m, grams, mode);
      grams[static_cast<size_t>(mode)] =
          Gram(factors[static_cast<size_t>(mode)]);
    }

    // Fit via one extra streaming inner-product pass.
    KruskalTensor current(factors);
    double inner = 0.0;
    for (const BlockIndex& block : grid.AllBlocks()) {
      TPCP_ASSIGN_OR_RETURN(DenseTensor chunk, input.ReadBlock(block));
      result.bytes_streamed += CostModel::TensorBytes(chunk.shape());
      KruskalTensor sliced(BlockFactorSlices(grid, block, factors));
      inner += InnerProduct(chunk, sliced);
    }
    const double k_norm = current.Norm();
    double resid_sq = x_norm_sq - 2.0 * inner + k_norm * k_norm;
    resid_sq = resid_sq > 0.0 ? resid_sq : 0.0;
    const double fit =
        x_norm_sq > 0.0 ? 1.0 - std::sqrt(resid_sq / x_norm_sq) : 1.0;

    result.iterations = iter + 1;
    result.fit = fit;
    if (iter > 0 && fit - prev_fit < options.fit_tolerance) {
      result.converged = true;
      prev_fit = fit;
      break;
    }
    prev_fit = fit;
    if (options.max_seconds > 0.0 &&
        watch.ElapsedSeconds() > options.max_seconds) {
      result.timed_out = true;
      break;
    }
  }

  result.fit = prev_fit;
  result.seconds = watch.ElapsedSeconds();
  result.decomposition = KruskalTensor(std::move(factors));
  result.decomposition.Normalize();
  return result;
}

}  // namespace tpcp
