#include "baselines/grid_parafac.h"

// GridParafac is header-only sugar over TwoPhaseCp; this translation unit
// exists so the target has a concrete object to archive.

namespace tpcp {}  // namespace tpcp
