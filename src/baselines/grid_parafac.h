// GridPARAFAC-style baseline (Phan & Cichocki [22]): the same two-phase
// block decomposition but with the conventional mode-centric refinement
// (Algorithm 1) and a backward-looking buffer policy.

#ifndef TPCP_BASELINES_GRID_PARAFAC_H_
#define TPCP_BASELINES_GRID_PARAFAC_H_

#include "core/two_phase_cp.h"

namespace tpcp {

/// Convenience wrapper that pins the configuration the paper compares
/// against: mode-centric scheduling + LRU replacement.
class GridParafac {
 public:
  GridParafac(BlockTensorStore* input, BlockFactorStore* factors,
              TwoPhaseCpOptions options)
      : engine_(input, factors, Pin(std::move(options))) {}

  Result<KruskalTensor> Run(ThreadPool* pool = nullptr) {
    return engine_.Run(pool);
  }
  const TwoPhaseCpResult& result() const { return engine_.result(); }

 private:
  static TwoPhaseCpOptions Pin(TwoPhaseCpOptions options) {
    options.schedule = ScheduleType::kModeCentric;
    options.policy = PolicyType::kLru;
    return options;
  }

  TwoPhaseCp engine_;
};

}  // namespace tpcp

#endif  // TPCP_BASELINES_GRID_PARAFAC_H_
