// Naive out-of-core CP-ALS ("Naive CP" / conventional TensorDB-style
// decomposition in Table II): no partitioned refinement — every ALS mode
// update streams the entire tensor from storage.

#ifndef TPCP_BASELINES_NAIVE_OOCP_H_
#define TPCP_BASELINES_NAIVE_OOCP_H_

#include "cp/cp_als.h"
#include "grid/block_tensor_store.h"
#include "tensor/kruskal.h"

namespace tpcp {

/// Options for the naive out-of-core decomposition.
struct NaiveOocpOptions {
  int64_t rank = 10;
  int max_iterations = 50;
  double fit_tolerance = 1e-4;
  uint64_t seed = 1;
  /// Wall-clock budget in seconds; 0 = unlimited. When exceeded the run
  /// stops and `timed_out` is set (the paper reports ">12 hours" for this
  /// baseline — the budget lets benches demonstrate the blow-up without
  /// waiting for it).
  double max_seconds = 0.0;
};

/// Run diagnostics.
struct NaiveOocpResult {
  KruskalTensor decomposition;
  int iterations = 0;
  bool converged = false;
  bool timed_out = false;
  double seconds = 0.0;
  double fit = 0.0;
  /// Tensor bytes streamed from storage over the whole run.
  uint64_t bytes_streamed = 0;
};

/// Runs ALS with factors in memory and the tensor streamed block-by-block
/// from `input` for every MTTKRP (N + 1 full passes per iteration).
Result<NaiveOocpResult> NaiveOutOfCoreCp(const BlockTensorStore& input,
                                         const NaiveOocpOptions& options);

}  // namespace tpcp

#endif  // TPCP_BASELINES_NAIVE_OOCP_H_
