#include "baselines/haten2_sim.h"

#include <cstring>

#include "cp/cp_als.h"
#include "linalg/blas.h"
#include "tensor/norms.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace tpcp {
namespace {

std::string EncodeDouble(double v) {
  return std::string(reinterpret_cast<const char*>(&v), sizeof(double));
}

bool DecodeDouble(const std::string& bytes, double* v) {
  if (bytes.size() != sizeof(double)) return false;
  std::memcpy(v, bytes.data(), sizeof(double));
  return true;
}

// Key for an intermediate record: the coordinates not yet bound, in mode
// order, plus the rank column — "i:k:f".
std::string MakeKey(const std::vector<int64_t>& coords, int64_t f) {
  std::string key;
  for (int64_t c : coords) {
    key += std::to_string(c);
    key += ':';
  }
  key += std::to_string(f);
  return key;
}

std::vector<int64_t> ParseKey(const std::string& key) {
  std::vector<int64_t> out;
  size_t pos = 0;
  while (pos < key.size()) {
    const size_t colon = key.find(':', pos);
    const size_t end = colon == std::string::npos ? key.size() : colon;
    out.push_back(std::stoll(key.substr(pos, end - pos)));
    pos = end + 1;
  }
  return out;
}

}  // namespace

Haten2Result RunHaten2Sim(const SparseTensor& tensor, Env* env,
                          const Haten2Options& options) {
  Stopwatch watch;
  Haten2Result result;
  const Shape& shape = tensor.shape();
  const int n = shape.num_modes();
  const int64_t f = options.rank;

  std::vector<Matrix> factors = RandomFactors(shape, f, options.seed);
  std::vector<Matrix> grams;
  grams.reserve(static_cast<size_t>(n));
  for (const Matrix& fac : factors) grams.push_back(Gram(fac));

  MapReduceOptions mr_options;
  mr_options.num_reducers = options.num_reducers;
  mr_options.heap_cap_bytes = options.heap_cap_bytes;
  mr_options.working_dir = options.working_dir;
  MapReduceEngine engine(env, mr_options);

  auto fail = [&](const Status& status) {
    result.failed = true;
    result.failure = status.ToString();
    result.seconds = watch.ElapsedSeconds();
    result.shuffle_bytes = engine.stats().shuffle_bytes;
    result.shuffle_records = engine.stats().shuffle_records;
    result.mapreduce_jobs = engine.stats().jobs_run;
    result.decomposition = KruskalTensor(std::move(factors));
    return result;
  };

  // Input staging: one record per non-zero — <i1:...:iN, value> tuples as a
  // Hadoop job would read them from HDFS.
  std::vector<Record> nnz_records;
  nnz_records.reserve(static_cast<size_t>(tensor.nnz()));
  for (const SparseEntry& e : tensor.entries()) {
    nnz_records.push_back(
        Record{MakeKey(std::vector<int64_t>(e.index.begin(), e.index.end()),
                       /*f=*/0),  // trailing :0 ignored for input tuples
               EncodeDouble(e.value)});
  }

  for (int iter = 0; iter < options.iterations; ++iter) {
    for (int mode = 0; mode < n; ++mode) {
      // HaTen2 computes the mode's MTTKRP as a chain of MapReduce jobs,
      // binding one non-target factor per job. Job 1 fans every non-zero
      // out to F rank columns — the nnz x F intermediate that makes dense
      // inputs blow up — and each following job binds the next factor and
      // aggregates. Reducers always sum partial products per key.
      std::vector<int> other_modes;
      for (int h = 0; h < n; ++h) {
        if (h != mode) other_modes.push_back(h);
      }

      std::vector<Record> current = nnz_records;
      for (size_t stage = 0; stage < other_modes.size(); ++stage) {
        const int bind_mode = other_modes[stage];
        const bool first = stage == 0;
        // Positions of the surviving coordinates within the key, relative
        // to the original mode order.
        std::vector<int> live_modes;
        if (first) {
          for (int h = 0; h < n; ++h) live_modes.push_back(h);
        } else {
          live_modes.push_back(mode);
          for (size_t s = stage; s < other_modes.size(); ++s) {
            live_modes.push_back(other_modes[s]);
          }
        }
        // Index of bind_mode within live_modes.
        int bind_pos = 0;
        for (size_t i = 0; i < live_modes.size(); ++i) {
          if (live_modes[i] == bind_mode) bind_pos = static_cast<int>(i);
        }
        const Matrix& bound = factors[static_cast<size_t>(bind_mode)];

        Mapper mapper = [&, first, bind_pos](const Record& rec,
                                             const Emitter& emit) {
          const std::vector<int64_t> parts = ParseKey(rec.key);
          double value = 0.0;
          if (!DecodeDouble(rec.value, &value)) return;
          // Surviving coordinates after dropping the bound mode: keep the
          // target mode first, then the not-yet-bound modes, preserving
          // their relative order.
          std::vector<int64_t> kept;
          const size_t ncoords = parts.size() - 1;  // last field is f
          for (size_t i = 0; i < ncoords; ++i) {
            if (static_cast<int>(i) != bind_pos) kept.push_back(parts[i]);
          }
          if (first) {
            // Reorder: target mode to the front.
            std::vector<int64_t> reordered;
            reordered.push_back(parts[static_cast<size_t>(mode)]);
            for (int h = 0; h < n; ++h) {
              if (h == mode || h == bind_mode) continue;
              reordered.push_back(parts[static_cast<size_t>(h)]);
            }
            const int64_t row = parts[static_cast<size_t>(bind_mode)];
            for (int64_t c = 0; c < f; ++c) {
              emit(MakeKey(reordered, c),
                   EncodeDouble(value * bound(row, c)));
            }
          } else {
            const int64_t row = parts[bind_pos];
            const int64_t c = parts[ncoords];
            emit(MakeKey(kept, c), EncodeDouble(value * bound(row, c)));
          }
        };
        Reducer reducer = [](const std::string& key,
                             const std::vector<std::string>& values,
                             const Emitter& emit) {
          double acc = 0.0;
          double v = 0.0;
          for (const std::string& bytes : values) {
            if (DecodeDouble(bytes, &v)) acc += v;
          }
          emit(key, EncodeDouble(acc));
        };

        auto outputs = engine.Run(mapper, reducer, current);
        if (!outputs.ok()) return fail(outputs.status());
        current = std::move(outputs).value();
      }

      // Driver-side: rows of the MTTKRP arrive as <i:f, m_if> records.
      Matrix m(shape.dim(mode), f);
      for (const Record& rec : current) {
        const std::vector<int64_t> parts = ParseKey(rec.key);
        if (parts.size() != 2) continue;
        const int64_t row = parts[0];
        const int64_t col = parts[1];
        double value = 0.0;
        if (row < 0 || row >= m.rows() || col < 0 || col >= f) continue;
        if (DecodeDouble(rec.value, &value)) m(row, col) = value;
      }
      factors[static_cast<size_t>(mode)] = AlsFactorUpdate(m, grams, mode);
      grams[static_cast<size_t>(mode)] =
          Gram(factors[static_cast<size_t>(mode)]);
    }
    result.iterations_completed = iter + 1;
  }

  result.seconds = watch.ElapsedSeconds();
  result.shuffle_bytes = engine.stats().shuffle_bytes;
  result.shuffle_records = engine.stats().shuffle_records;
  result.mapreduce_jobs = engine.stats().jobs_run;
  result.decomposition = KruskalTensor(std::move(factors));
  result.decomposition.Normalize();
  result.fit = Fit(tensor, result.decomposition);
  return result;
}

}  // namespace tpcp
