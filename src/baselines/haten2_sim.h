// HaTen2-sim: the algorithmic skeleton of HaTen2 (Jeon et al., ICDE'15) —
// a MapReduce-based sparse CP-ALS — rebuilt on the local MapReduce
// emulator.
//
// HaTen2 computes each factor update as a chain of MapReduce jobs whose
// intermediate volume is proportional to nnz(X) * F. That is efficient for
// the sparse social-media tensors it targets and catastrophic for the dense
// scientific tensors 2PCP targets: on dense inputs, nnz approaches the cell
// count, every iteration shuffles the whole tensor times F through storage,
// and reducer-side state outgrows memory — the "FAILS" entry in Table I.
// The emulator's heap cap reproduces that failure deterministically.

#ifndef TPCP_BASELINES_HATEN2_SIM_H_
#define TPCP_BASELINES_HATEN2_SIM_H_

#include <string>

#include "parallel/mapreduce.h"
#include "tensor/kruskal.h"
#include "tensor/sparse_tensor.h"

namespace tpcp {

/// Configuration of a HaTen2-sim run.
struct Haten2Options {
  int64_t rank = 10;
  int iterations = 1;  // the paper reports 1 iteration for Table I
  int num_reducers = 8;
  /// Per-reducer memory budget; dense inputs exceed it (0 = unlimited).
  int64_t heap_cap_bytes = 0;
  uint64_t seed = 1;
  std::string working_dir = "haten2";
};

/// Run outcome; `failed` mirrors the paper's FAILS.
struct Haten2Result {
  KruskalTensor decomposition;
  int iterations_completed = 0;
  bool failed = false;
  std::string failure;
  double seconds = 0.0;
  double fit = 0.0;
  uint64_t shuffle_bytes = 0;
  uint64_t shuffle_records = 0;
  uint64_t mapreduce_jobs = 0;
};

/// Runs the MapReduce CP-ALS over the non-zeros of `tensor`, staging every
/// shuffle through `env`.
Haten2Result RunHaten2Sim(const SparseTensor& tensor, Env* env,
                          const Haten2Options& options);

}  // namespace tpcp

#endif  // TPCP_BASELINES_HATEN2_SIM_H_
