// Single-node MapReduce emulator with on-disk shuffle.
//
// Substitutes for the Hadoop platform the paper runs Phase 1 and HaTen2 on:
// map outputs are partitioned by key hash, spilled to an Env, then re-read
// and grouped by the reduce phase. Every byte crossing the map->reduce
// boundary goes through the Env, so shuffle volume is measured exactly; a
// configurable heap cap makes jobs whose per-reducer group state exceeds
// available memory fail with ResourceExhausted — the analogue of the JVM
// OOM that makes HaTen2 "FAIL" on dense tensors in the paper's Table I.

#ifndef TPCP_PARALLEL_MAPREDUCE_H_
#define TPCP_PARALLEL_MAPREDUCE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "parallel/thread_pool.h"
#include "storage/env.h"
#include "util/status.h"

namespace tpcp {

/// One key/value record.
struct Record {
  std::string key;
  std::string value;
};

/// Receives emitted records from map and reduce functions.
using Emitter = std::function<void(std::string key, std::string value)>;

/// Map: one input record -> any number of intermediate records.
using Mapper = std::function<void(const Record& input, const Emitter& emit)>;

/// Reduce: one key plus all its values -> any number of output records.
using Reducer = std::function<void(const std::string& key,
                                   const std::vector<std::string>& values,
                                   const Emitter& emit)>;

/// Engine configuration.
struct MapReduceOptions {
  /// Number of reduce partitions.
  int num_reducers = 4;
  /// Maximum bytes a single reducer may hold grouped in memory; exceeding it
  /// aborts the job with ResourceExhausted. <= 0 means unlimited.
  int64_t heap_cap_bytes = 0;
  /// Accounting overhead charged per grouped record on top of its key and
  /// value payload (container nodes, string headers — the JVM equivalent is
  /// far larger). Only used when heap_cap_bytes > 0.
  int64_t record_overhead_bytes = 48;
  /// Prefix inside the Env for shuffle spill files.
  std::string working_dir = "mr";
  /// Optional pool for running map tasks concurrently (may be null).
  ThreadPool* pool = nullptr;
};

/// Cumulative statistics for one engine.
struct MapReduceStats {
  uint64_t jobs_run = 0;
  uint64_t map_input_records = 0;
  uint64_t shuffle_records = 0;
  uint64_t shuffle_bytes = 0;
  uint64_t output_records = 0;
};

/// Runs MapReduce jobs against an Env-backed shuffle.
class MapReduceEngine {
 public:
  MapReduceEngine(Env* env, MapReduceOptions options);

  /// Executes one job over `input`, returning the reduce outputs.
  Result<std::vector<Record>> Run(const Mapper& mapper, const Reducer& reducer,
                                  const std::vector<Record>& input);

  const MapReduceStats& stats() const { return stats_; }
  void ResetStats() { stats_ = MapReduceStats(); }

 private:
  Env* env_;
  MapReduceOptions options_;
  MapReduceStats stats_;
  uint64_t job_counter_ = 0;
};

/// Encodes/decodes a record list to bytes (length-prefixed), exposed for
/// tests and for baselines that stage record files directly.
std::string EncodeRecords(const std::vector<Record>& records);
Result<std::vector<Record>> DecodeRecords(const std::string& bytes);

}  // namespace tpcp

#endif  // TPCP_PARALLEL_MAPREDUCE_H_
