#include "parallel/thread_pool.h"

#include "util/logging.h"

namespace tpcp {

ThreadPool::ThreadPool(int num_threads) {
  TPCP_CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    TPCP_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn) {
  if (pool == nullptr || pool->num_threads() == 1) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  for (int64_t i = begin; i < end; ++i) {
    pool->Submit([&fn, i] { fn(i); });
  }
  pool->Wait();
}

}  // namespace tpcp
