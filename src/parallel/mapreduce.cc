#include "parallel/mapreduce.h"

#include <cstring>
#include <map>
#include <mutex>

#include "util/logging.h"

namespace tpcp {
namespace {

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(const std::string& bytes, size_t* pos, uint32_t* v) {
  if (*pos + sizeof(uint32_t) > bytes.size()) return false;
  std::memcpy(v, bytes.data() + *pos, sizeof(uint32_t));
  *pos += sizeof(uint32_t);
  return true;
}

bool ReadBlob(const std::string& bytes, size_t* pos, std::string* out) {
  uint32_t len = 0;
  if (!ReadU32(bytes, pos, &len)) return false;
  if (*pos + len > bytes.size()) return false;
  out->assign(bytes, *pos, len);
  *pos += len;
  return true;
}

uint64_t HashKey(const std::string& key) {
  // FNV-1a.
  uint64_t h = 1469598103934665603ull;
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::string EncodeRecords(const std::vector<Record>& records) {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(records.size()));
  for (const Record& r : records) {
    AppendU32(&out, static_cast<uint32_t>(r.key.size()));
    out += r.key;
    AppendU32(&out, static_cast<uint32_t>(r.value.size()));
    out += r.value;
  }
  return out;
}

Result<std::vector<Record>> DecodeRecords(const std::string& bytes) {
  size_t pos = 0;
  uint32_t count = 0;
  if (!ReadU32(bytes, &pos, &count)) {
    return Status::Corruption("record file: truncated count");
  }
  std::vector<Record> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Record r;
    if (!ReadBlob(bytes, &pos, &r.key) || !ReadBlob(bytes, &pos, &r.value)) {
      return Status::Corruption("record file: truncated entry");
    }
    out.push_back(std::move(r));
  }
  return out;
}

MapReduceEngine::MapReduceEngine(Env* env, MapReduceOptions options)
    : env_(env), options_(std::move(options)) {
  TPCP_CHECK_GE(options_.num_reducers, 1);
}

Result<std::vector<Record>> MapReduceEngine::Run(
    const Mapper& mapper, const Reducer& reducer,
    const std::vector<Record>& input) {
  const uint64_t job_id = job_counter_++;
  const int r = options_.num_reducers;
  const std::string job_prefix =
      options_.working_dir + "/job" + std::to_string(job_id) + "/";

  // ---- Map phase: partition intermediate records by key hash. ----
  std::vector<std::vector<Record>> partitions(static_cast<size_t>(r));
  std::mutex partitions_mu;
  auto run_map = [&](const Record& rec) {
    std::vector<Record> local;
    mapper(rec, [&local](std::string key, std::string value) {
      local.push_back(Record{std::move(key), std::move(value)});
    });
    std::lock_guard<std::mutex> lock(partitions_mu);
    for (Record& out : local) {
      const size_t p = static_cast<size_t>(HashKey(out.key) %
                                           static_cast<uint64_t>(r));
      partitions[p].push_back(std::move(out));
    }
  };
  if (options_.pool != nullptr) {
    ParallelFor(options_.pool, 0, static_cast<int64_t>(input.size()),
                [&](int64_t i) { run_map(input[static_cast<size_t>(i)]); });
  } else {
    for (const Record& rec : input) run_map(rec);
  }
  stats_.map_input_records += input.size();

  // ---- Shuffle: spill every partition through the Env. ----
  for (int p = 0; p < r; ++p) {
    const std::string spill = EncodeRecords(partitions[static_cast<size_t>(p)]);
    stats_.shuffle_records += partitions[static_cast<size_t>(p)].size();
    stats_.shuffle_bytes += spill.size();
    TPCP_RETURN_IF_ERROR(
        env_->WriteFile(job_prefix + "part" + std::to_string(p), spill));
    partitions[static_cast<size_t>(p)].clear();
    partitions[static_cast<size_t>(p)].shrink_to_fit();
  }

  // ---- Reduce phase: re-read each partition, group, reduce. ----
  std::vector<Record> outputs;
  for (int p = 0; p < r; ++p) {
    std::string spill;
    TPCP_RETURN_IF_ERROR(
        env_->ReadFile(job_prefix + "part" + std::to_string(p), &spill));
    TPCP_ASSIGN_OR_RETURN(std::vector<Record> records, DecodeRecords(spill));

    std::map<std::string, std::vector<std::string>> groups;
    int64_t grouped_bytes = 0;
    for (Record& rec : records) {
      grouped_bytes += static_cast<int64_t>(rec.key.size() + rec.value.size()) +
                       options_.record_overhead_bytes;
      if (options_.heap_cap_bytes > 0 &&
          grouped_bytes > options_.heap_cap_bytes) {
        return Status::ResourceExhausted(
            "reducer " + std::to_string(p) + " exceeded heap cap (" +
            std::to_string(options_.heap_cap_bytes) + " bytes)");
      }
      groups[std::move(rec.key)].push_back(std::move(rec.value));
    }
    for (const auto& [key, values] : groups) {
      reducer(key, values, [&outputs](std::string k, std::string v) {
        outputs.push_back(Record{std::move(k), std::move(v)});
      });
    }
    // Spill files are consumed; drop them.
    TPCP_RETURN_IF_ERROR(
        env_->DeleteFile(job_prefix + "part" + std::to_string(p)));
  }
  stats_.output_records += outputs.size();
  ++stats_.jobs_run;
  return outputs;
}

}  // namespace tpcp
