// Fixed-size thread pool used for Phase-1 block decompositions and the
// MapReduce emulator's task execution.

#ifndef TPCP_PARALLEL_THREAD_POOL_H_
#define TPCP_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tpcp {

/// Simple FIFO thread pool. Tasks are void() callables; exceptions must not
/// escape tasks (CHECK-fail instead).
///
/// FIFO dequeue is part of the contract: tasks *start* in submission order
/// (they may still finish out of order across workers). The prefetch
/// pipeline relies on this — a unit's re-load is always submitted after
/// that unit's writeback, so even a single-worker pool never starts the
/// load first and a load that waits for its writeback can never occupy the
/// only worker the writeback needs.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);

  /// Runs every already-queued task to completion, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks are started in submission order.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int64_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs fn(i) for i in [begin, end) across the pool, blocking until done.
/// With a null pool, runs inline on the calling thread.
void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn);

}  // namespace tpcp

#endif  // TPCP_PARALLEL_THREAD_POOL_H_
