// Z-order (Morton-order) curve: bit-interleaved linearization of grid
// positions (Section VI-C-1). Cheap to compute in any dimension.

#ifndef TPCP_SCHEDULE_ZORDER_H_
#define TPCP_SCHEDULE_ZORDER_H_

#include <cstdint>
#include <vector>

namespace tpcp {

/// Z-value of a point: interleaves the low `bits` bits of every coordinate,
/// coordinate 0 contributing the least significant bit of each group (the
/// paper's zvalue(k) with modes numbered from 1).
uint64_t ZValue(const std::vector<int64_t>& point, int bits);

/// Inverse of ZValue.
std::vector<int64_t> ZDecode(uint64_t zvalue, int dims, int bits);

/// Smallest b with 2^b >= n (bits needed to address n cells per mode).
int BitsFor(int64_t n);

}  // namespace tpcp

#endif  // TPCP_SCHEDULE_ZORDER_H_
