// Conflict analysis over update schedules: segmentation of a cycle into
// maximal conflict-free step batches (the unit of Phase-2 compute
// parallelism).
//
// Two update steps are *conflict-free* when executing them concurrently —
// in any interleaving — produces bit-identical state to executing them in
// schedule order. For the Eq.-3 update rule the criterion is exact:
//
//   A step on unit ⟨i, ki⟩ writes A^(i)_(ki), G^(i)_(ki) and M^(i)_l for
//   the blocks l of its slab (l_i = ki), and reads M^(h)_l (h != i) for
//   those blocks plus G^(h)_(l_h) for h != i. Two steps on the SAME mode
//   but DIFFERENT partitions therefore touch disjoint slabs, sub-factors,
//   Grams and M entries — neither reads anything the other writes (the
//   update never consults mode-i metadata while updating mode i) — so they
//   commute exactly, including floating point. Steps on different modes
//   always conflict: a mode-i step reads G^(h) entries and M-columns a
//   mode-h step rewrites. Steps on the same unit trivially conflict.
//
// A *batch* is thus a maximal contiguous run of same-mode steps with
// pairwise-distinct partitions. Mode-centric schedules decompose into one
// batch per mode (width K_i — wide parallelism); block-centric schedules
// (fiber/Z/Hilbert order) interleave modes at every block and decompose
// into singletons (the engine then degrades to serial steps, still
// deterministic). Batches never span the cycle boundary, so batch
// segmentation — and with it every parallel execution — is a pure function
// of the schedule, independent of buffer budget or thread count.

#ifndef TPCP_SCHEDULE_CONFLICT_H_
#define TPCP_SCHEDULE_CONFLICT_H_

#include <vector>

#include "schedule/update_schedule.h"

namespace tpcp {

/// One conflict-free batch: cycle positions [begin, end).
struct StepBatch {
  int64_t begin = 0;
  int64_t end = 0;

  int64_t size() const { return end - begin; }
};

/// Segmentation of a schedule's cycle into maximal conflict-free batches.
class ConflictAnalysis {
 public:
  /// Segments `schedule`'s cycle. The schedule must outlive the analysis.
  explicit ConflictAnalysis(const UpdateSchedule& schedule);

  /// The batches, in cycle order; they tile [0, cycle_length) exactly.
  const std::vector<StepBatch>& batches() const { return batches_; }

  /// First position after the batch containing global position `pos`
  /// (pos >= 0; the segmentation repeats every cycle). All steps in
  /// [pos, BatchEndAfter(pos)) are pairwise conflict-free — a tail of a
  /// conflict-free batch is conflict-free, so a resume cursor landing
  /// mid-batch simply starts with a shorter batch.
  ///
  /// Cycle-boundary contract: a cursor at exactly k·cycle_length is the
  /// *first step of cycle k* and therefore belongs to that cycle's first
  /// batch — the result is k·cycle_length + first_batch_end, strictly
  /// greater than `pos`. It never refers back to the completed batch that
  /// *ended* at `pos`, so a run resuming from a checkpoint cut at a cycle
  /// boundary executes a real (non-empty) batch, not a stale tail.
  int64_t BatchEndAfter(int64_t pos) const;

  /// Width of the widest batch — the schedule's peak step parallelism.
  int64_t max_batch_size() const { return max_batch_size_; }

 private:
  std::vector<StepBatch> batches_;
  /// batch_end_[p] = end (cycle position) of the batch containing p.
  std::vector<int64_t> batch_end_;
  int64_t cycle_length_ = 0;
  int64_t max_batch_size_ = 0;
};

/// True when the two steps can run concurrently with bit-identical
/// results: same mode, different partitions (see the file comment for why
/// this is exact, not conservative).
bool StepsConflictFree(const UpdateStep& a, const UpdateStep& b);

}  // namespace tpcp

#endif  // TPCP_SCHEDULE_CONFLICT_H_
