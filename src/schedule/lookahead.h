// Next-use oracle over an update schedule's unit-access trace.
//
// The regular, precomputable structure of fiber-/Z-/Hilbert-order traversals
// is what makes the paper's forward-looking replacement policy feasible
// (Section VII-B): for any unit in the buffer we can compute exactly how far
// in the future the schedule touches it again.

#ifndef TPCP_SCHEDULE_LOOKAHEAD_H_
#define TPCP_SCHEDULE_LOOKAHEAD_H_

#include <map>
#include <vector>

#include "schedule/update_schedule.h"

namespace tpcp {

/// Precomputed next-occurrence index over one schedule cycle.
class ScheduleLookahead {
 public:
  explicit ScheduleLookahead(const UpdateSchedule& schedule);

  /// Global position (> current_pos) of the next access to `unit`, given
  /// that the step at `current_pos` is being executed now. The schedule is
  /// cyclic, so a next use always exists for any unit that appears in the
  /// cycle; units never accessed return a position one full cycle away plus
  /// the cycle length (i.e., "furthest possible").
  int64_t NextUse(const ModePartition& unit, int64_t current_pos) const;

 private:
  int64_t cycle_len_;
  // Sorted in-cycle positions per unit.
  std::map<ModePartition, std::vector<int64_t>> positions_;
};

}  // namespace tpcp

#endif  // TPCP_SCHEDULE_LOOKAHEAD_H_
