// The Phase-2 execution planner: maps (schedule × buffer budget × plan
// options) to an ExecutionPlan (schedule/execution_plan.h).
//
// Planning runs three passes:
//
//  1. Conflict-aware reordering (optional). Within a sliding window over
//     the cycle, same-mode steps on pairwise-distinct partitions are
//     hoisted into contiguous runs — the widened conflict-free waves that
//     let block-centric schedules (FO/ZO/HO), whose native cycles
//     interleave modes and segment into singletons, finally parallelize
//     across steps. The pass preserves the per-mode (hence per-unit)
//     relative order of steps and the per-cycle step multiset, so the
//     reordered sequence is still a tensor-filling cyclic schedule.
//  2. Swap-parity certification (optional). A reordered cycle is only
//     adopted when an exact replay through the swap simulator
//     (core/swap_simulator.h) shows its steady-state swap count does not
//     exceed the source order's under the run's own policy and buffer
//     budget — reordering widens parallelism without giving up the
//     swap-optimality that motivated the block-centric schedules. Wider
//     waves concentrate more distinct units, so a tight buffer may fail
//     the widest window; the planner then ladders down through halved
//     windows and adopts the widest certified candidate, falling back to
//     the source order when none passes (the evaluated candidate's
//     numbers stay in PlanStats for reporting).
//  3. Wave assembly. The (possibly reordered) cycle is segmented into
//     maximal conflict-free waves (schedule/conflict.h); each wave gets
//     its prefetch directive (last step + prefetch depth) and eviction
//     hints (units whose next use is at least one virtual iteration out),
//     both derived from one shared next-use oracle. Singleton waves get
//     the intra-step shard chunk.
//
// Everything here is deterministic: two Build calls with equal inputs
// return plans with equal fingerprints, which is what makes checkpointed
// cancel→resume replay exact.

#ifndef TPCP_SCHEDULE_PLANNER_H_
#define TPCP_SCHEDULE_PLANNER_H_

#include "buffer/data_unit.h"
#include "buffer/replacement_policy.h"
#include "schedule/execution_plan.h"

namespace tpcp {

/// Inputs that shape a plan. Math-shaping fields (reorder, reorder_window,
/// shard_chunk_blocks, and — through certification — rank/policy/
/// buffer_bytes) select the step order and shard structure; prefetch_depth
/// only shapes the waves' prefetch directives.
struct PlannerOptions {
  /// Rank used to size data units for the certification replay.
  int64_t rank = 10;
  /// Replacement policy the run will use (certification replays it).
  PolicyType policy = PolicyType::kForward;
  /// Effective buffer capacity in bytes (>= the largest unit). Required
  /// for certification; 0 disables it.
  uint64_t buffer_bytes = 0;

  /// Run the conflict-aware reordering pass.
  bool reorder = false;
  /// Sliding-window length in steps (0 = one virtual iteration; clamped
  /// up to num_modes + 1, the smallest window that can hoist anything).
  int64_t reorder_window = 0;
  /// Slab blocks per shard for singleton-wave steps (0 = sharding off).
  int64_t shard_chunk_blocks = 0;

  /// Prefetch depth of the run (0 = synchronous data path).
  int prefetch_depth = 0;

  /// Give LRU/MRU the schedule's next-use oracle as victim advice
  /// (TwoPhaseCpOptions::policy_victim_hints). Certification replays the
  /// same advised policy, so the parity gate models the run's real
  /// eviction behavior.
  bool victim_hints = false;

  /// Simulate swap counts (fills PlanStats; gates reordering). Skipping
  /// certification adopts a requested reorder unverified — benches and
  /// tests only. Certification replays whole cycles: the trace is
  /// cycle-periodic, so cycle-aligned windows measure the true steady
  /// state (vi-aligned windows would not when vi_len ∤ cycle_length).
  bool certify = true;
  int certify_warmup_cycles = 2;
  int certify_measure_cycles = 2;
};

class Planner {
 public:
  /// Builds the plan for `schedule` under `options`. Deterministic: equal
  /// inputs yield plans with equal fingerprints.
  static ExecutionPlan Build(const UpdateSchedule& schedule,
                             const PlannerOptions& options);
};

/// Exchange traffic of one worker over a span of plan positions, counted
/// in logical matrix bytes (8 bytes per entry; framing and base64 overhead
/// excluded, so the executor's own logical counters can match exactly).
struct WorkerTraffic {
  /// Bytes this worker uploads to the coordinator (metadata images of its
  /// owned steps, plus sub-factor persists when accounted separately).
  uint64_t up_bytes = 0;
  /// Bytes the coordinator relays down to this worker (metadata images of
  /// every step it does not own).
  uint64_t down_bytes = 0;
  /// Exchange messages: one per owned step (up) ...
  int64_t up_messages = 0;
  /// ... and one per non-owned step (down).
  int64_t down_messages = 0;

  WorkerTraffic& operator+=(const WorkerTraffic& other) {
    up_bytes += other.up_bytes;
    down_bytes += other.down_bytes;
    up_messages += other.up_messages;
    down_messages += other.down_messages;
    return *this;
  }
};

/// The distribution layer over one ExecutionPlan: a deterministic, disjoint
/// and exhaustive ownership map plus the exchange-message schedule it
/// implies.
///
/// Ownership is *weighted*: each data unit's weight is its per-cycle step
/// count times its slab+factor bytes (the worker-local work and I/O the
/// unit induces), and units are assigned greedily — heaviest first — to the
/// least-loaded worker (longest-processing-time balance). Ties break
/// deterministically (weight desc, then mode asc, part asc; least-loaded
/// worker, lowest id first), so coordinator and workers rebuild the exact
/// same map from (plan, rank, N) independently. On uniform grids this
/// degenerates to round-robin; on skewed grids it keeps one giant
/// partition from pacing the fleet. The map is a fingerprinted plan
/// property (ownership_fingerprint) validated at worker hello and on
/// checkpoint resume — a resume under a different map would re-price the
/// ledger and break the measured==predicted invariant silently.
///
/// The dist executor's contract falls out of the update's data flow: a step
/// on ⟨i,ki⟩ writes its own A and U-slab (bulk data only its owner ever
/// touches) and refreshes metadata every worker mirrors — the Gram matrix
/// G^(i)_(ki) and the slab's M^(i)_l = U_lᵀ A_l products, all F×F. So after
/// each wave the owner of each step uploads that step's metadata image and
/// the coordinator relays it to every other worker; sub-factors themselves
/// travel only at persist (checkpoint) boundaries, owner → coordinator.
/// This class prices both flows exactly, which is what lets the cluster
/// cost model's predicted bytes equal the executor's measured counters.
class DistributedPlan {
 public:
  /// `plan` must outlive this object. `rank` sizes the exchanged matrices
  /// (the plan itself is rank-agnostic); `num_workers` >= 1.
  DistributedPlan(const ExecutionPlan* plan, int64_t rank, int num_workers);

  int num_workers() const { return num_workers_; }
  const ExecutionPlan& plan() const { return *plan_; }

  /// Owner of a data unit under the weighted ownership map.
  int OwnerOf(const ModePartition& unit) const {
    return owner_[static_cast<size_t>(UnitIndex(unit))];
  }
  /// Owner of the step at plan position `pos`.
  int OwnerAt(int64_t pos) const { return OwnerOf(plan_->UnitAt(pos)); }

  /// FNV-1a hash over (num_workers, every unit's owner in mode-major
  /// order). Workers echo it in their ready message and checkpoints record
  /// it, so a fleet or resume under a different map is rejected instead of
  /// silently re-pricing the ledger. Never 0 (0 means "not recorded").
  uint64_t ownership_fingerprint() const { return ownership_fingerprint_; }

  /// Logical bytes of the metadata image the step at `pos` publishes:
  /// G (F×F) plus one M (F×F) per slab block of the step's mode.
  uint64_t StepExchangeBytes(int64_t pos) const;

  /// Logical bytes of the sub-factor A of `unit` (a persist upload).
  uint64_t FactorBytes(const ModePartition& unit) const {
    return catalog_.FactorBytes(unit);
  }

  /// Liveness of the metadata image published at absolute position `pos`
  /// for non-owner `worker`: true when the worker actually reads the image
  /// before the unit's next refresh supersedes it. An image is read by
  ///
  ///  - every worker's surrogate-fit evaluation when a virtual-iteration
  ///    boundary falls inside the image's lifetime (pos, next_refresh] —
  ///    SurrogateFit walks the complete metadata state, and fits must stay
  ///    bitwise equal across workers; and
  ///  - any step of a *different* mode inside (pos, next_refresh): every
  ///    cross-mode step's slab intersects the image's slab, while same-mode
  ///    steps never read mode-i metadata at all.
  ///
  /// Everything else is a dead absorb the relay can prune. Mode-centric
  /// schedules refresh each unit exactly once per virtual iteration, so
  /// every image there is fit-live and pruning is a provable no-op; the
  /// wins come from block-centric schedules, whose units refresh once per
  /// slab block per cycle.
  bool ImageLiveFor(int64_t pos, int worker) const;

  /// Overlap-pipeline deferral: may the relay of the (live) image published
  /// at `pos` — inside the wave ending at `wave_end` — be pushed into the
  /// *next* wave's compute window without changing `worker`'s inputs?
  /// Deferred frames are delivered while the next wave computes and are
  /// confirmed absorbed at that wave's commit barrier, so deferral is safe
  /// exactly when nothing in the next wave reads the image:
  ///
  ///  - never across a virtual-iteration boundary (`wave_end` ends its vi):
  ///    the fit/persist epilogue that follows reads the complete metadata
  ///    state, and any live image there is fit-live;
  ///  - next wave of the *same* mode: same-mode steps never read mode-i
  ///    metadata, so deferral is safe unless the image's own unit refreshes
  ///    in that wave (the stale deferred frame must not be relayed after
  ///    the refresh's frame);
  ///  - next wave of a *different* mode: safe only when `worker` owns no
  ///    step there (every cross-mode step reads the image).
  ///
  /// Coordinator and workers evaluate this identically, which is what makes
  /// the pipelined commit gate (and hence the run) bit-identical to barrier
  /// execution.
  bool CanDeferPast(int64_t pos, int worker, int64_t wave_end) const;

  /// Metadata exchange traffic of `worker` over plan positions
  /// [begin, end): one upload per owned step, one download per non-owned
  /// step whose image is live for this worker (ImageLiveFor). Persist
  /// uploads are priced separately by PersistBytesForRange.
  WorkerTraffic TrafficForRange(int worker, int64_t begin, int64_t end) const;

  /// Sub-factor bytes `worker` uploads at a persist boundary covering plan
  /// positions [begin, end): each owned unit updated in the range, once.
  uint64_t PersistBytesForRange(int worker, int64_t begin, int64_t end) const;

  /// Grep-able per-worker summary ("dist:" lines).
  std::string Summary() const;

 private:
  /// Flat index of `unit` in mode-major (mode, part) order.
  int64_t UnitIndex(const ModePartition& unit) const {
    return owner_offset_[static_cast<size_t>(unit.mode)] + unit.part;
  }

  const ExecutionPlan* plan_;
  UnitCatalog catalog_;
  int num_workers_;
  /// Per-mode offsets into owner_ (mode-major unit indexing).
  std::vector<int64_t> owner_offset_;
  /// Owner of every unit, mode-major.
  std::vector<int> owner_;
  uint64_t ownership_fingerprint_ = 0;
  /// Metadata-image bytes per cycle position (cycle-periodic).
  std::vector<uint64_t> step_bytes_;
  /// Steps until the unit updated at each cycle position is next updated
  /// (cycle-periodic; in [1, cycle_length]).
  std::vector<int64_t> next_refresh_delta_;
  /// Bitmask (bit w = worker w) of workers owning a different-mode step
  /// strictly inside each position's refresh window (cycle-periodic).
  std::vector<uint64_t> reader_mask_;
};

/// The reordering pass alone (exposed for tests and benches): permutes
/// `cycle` by hoisting, within each leading window of `window` steps,
/// same-mode steps on distinct partitions into contiguous runs. Preserves
/// the relative order of same-mode steps.
std::vector<UpdateStep> ReorderCycleForWidth(
    const std::vector<UpdateStep>& cycle, int64_t window);

}  // namespace tpcp

#endif  // TPCP_SCHEDULE_PLANNER_H_
