// N-dimensional Hilbert curve (Section VI-C-2), via Skilling's transpose
// algorithm ("Programming the Hilbert curve", AIP Conf. Proc. 707, 2004).

#ifndef TPCP_SCHEDULE_HILBERT_H_
#define TPCP_SCHEDULE_HILBERT_H_

#include <cstdint>
#include <vector>

namespace tpcp {

/// Distance along the Hilbert curve of a point with `bits` bits per
/// coordinate. Coordinates must be < 2^bits; dims * bits <= 64.
uint64_t HilbertIndex(const std::vector<int64_t>& point, int bits);

/// Inverse of HilbertIndex.
std::vector<int64_t> HilbertPoint(uint64_t index, int dims, int bits);

}  // namespace tpcp

#endif  // TPCP_SCHEDULE_HILBERT_H_
