#include "schedule/execution_plan.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace tpcp {
namespace {

/// FNV-1a over a 64-bit word (same construction as the options
/// fingerprint in core/config.cc, kept local to avoid a layering cycle).
uint64_t HashWord(uint64_t hash, uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (word >> (8 * i)) & 0xffu;
    hash *= 1099511628211ull;
  }
  return hash;
}

uint64_t PlanFingerprint(const UpdateSchedule& schedule,
                         int64_t shard_chunk_blocks) {
  uint64_t hash = 14695981039346656037ull;
  const GridPartition& grid = schedule.grid();
  hash = HashWord(hash, static_cast<uint64_t>(schedule.type()));
  hash = HashWord(hash, static_cast<uint64_t>(grid.num_modes()));
  for (int m = 0; m < grid.num_modes(); ++m) {
    hash = HashWord(hash, static_cast<uint64_t>(grid.parts(m)));
  }
  for (const UpdateStep& step : schedule.cycle()) {
    hash = HashWord(hash, static_cast<uint64_t>(step.mode));
    hash = HashWord(hash, static_cast<uint64_t>(step.unit().part));
  }
  hash = HashWord(hash, static_cast<uint64_t>(shard_chunk_blocks));
  return hash;
}

}  // namespace

ExecutionPlan::ExecutionPlan(UpdateSchedule schedule,
                             std::vector<PlanWave> waves,
                             int64_t shard_chunk_blocks, int prefetch_depth,
                             std::shared_ptr<const ScheduleLookahead> lookahead,
                             PlanStats stats)
    : schedule_(std::move(schedule)),
      waves_(std::move(waves)),
      shard_chunk_blocks_(shard_chunk_blocks),
      prefetch_depth_(prefetch_depth),
      lookahead_(std::move(lookahead)),
      stats_(stats) {
  TPCP_CHECK(!waves_.empty());
  TPCP_CHECK_GE(prefetch_depth_, 0);
  wave_of_.resize(static_cast<size_t>(schedule_.cycle_length()));
  int64_t expected_begin = 0;
  for (size_t w = 0; w < waves_.size(); ++w) {
    TPCP_CHECK_EQ(waves_[w].begin, expected_begin)
        << "waves must tile the cycle";
    for (int64_t p = waves_[w].begin; p < waves_[w].end; ++p) {
      wave_of_[static_cast<size_t>(p)] = w;
    }
    expected_begin = waves_[w].end;
  }
  TPCP_CHECK_EQ(expected_begin, schedule_.cycle_length());
  fingerprint_ = PlanFingerprint(schedule_, shard_chunk_blocks_);
}

const PlanWave& ExecutionPlan::WaveAt(int64_t pos) const {
  TPCP_CHECK_GE(pos, 0);
  return waves_[wave_of_[static_cast<size_t>(pos % cycle_length())]];
}

int64_t ExecutionPlan::WaveEndAfter(int64_t pos) const {
  TPCP_CHECK_GE(pos, 0);
  // A position exactly at k·cycle_length is the first step of cycle k, so
  // it belongs to the first wave of the *new* cycle — the result is always
  // strictly greater than pos (the same contract, now spelled out, as
  // ConflictAnalysis::BatchEndAfter).
  const int64_t cycle_base = (pos / cycle_length()) * cycle_length();
  return cycle_base + WaveAt(pos).end;
}

int64_t ExecutionPlan::ShardBlocksAt(int64_t pos) const {
  if (shard_chunk_blocks_ <= 0) return 0;
  // Only singleton waves shard: wide waves already parallelize across
  // steps, and nesting a shard fan-out inside a step fan-out would
  // deadlock the shared pool. The decision reads the *plan* wave, so a
  // wide wave that execution split into smaller pieces still never shards.
  return WaveAt(pos).size() == 1 ? shard_chunk_blocks_ : 0;
}

std::string ExecutionPlan::Summary(int64_t max_waves) const {
  std::ostringstream out;
  const GridPartition& grid = schedule_.grid();
  out << "plan: schedule=" << ScheduleTypeName(schedule_.type()) << " grid=";
  for (int m = 0; m < grid.num_modes(); ++m) {
    out << (m > 0 ? "x" : "") << grid.parts(m);
  }
  out << " cycle=" << cycle_length() << " vi-steps="
      << virtual_iteration_length() << " waves=" << waves_.size()
      << " max-width=" << stats_.max_width_after << " (source "
      << stats_.max_width_before << ")"
      << " reordered="
      << (!stats_.reorder_requested
              ? "off"
              : (stats_.reorder_applied ? "yes" : "rejected"))
      << " window=" << stats_.reorder_window
      << " shard-chunk=" << shard_chunk_blocks_
      << " sharded-steps=" << stats_.sharded_steps
      << " prefetch-depth=" << prefetch_depth_ << "\n";
  out.precision(2);
  out << std::fixed;
  out << "plan: swaps/vi before=" << stats_.swaps_before
      << " after=" << stats_.effective_swaps() << " parity=";
  if (!stats_.certified) {
    out << "unverified";
  } else if (stats_.effective_swaps() <= stats_.swaps_before + 1e-9) {
    out << "ok";
  } else {
    out << "VIOLATED";  // unreachable: the planner falls back instead
  }
  out << " fingerprint=" << fingerprint_ << "\n";
  const int64_t shown =
      std::min<int64_t>(max_waves, static_cast<int64_t>(waves_.size()));
  for (int64_t w = 0; w < shown; ++w) {
    const PlanWave& wave = waves_[static_cast<size_t>(w)];
    out << "plan: wave " << w << ": [" << wave.begin << "," << wave.end
        << ") mode=" << wave.mode << " width=" << wave.size()
        << " shards=" << ShardBlocksAt(wave.begin)
        << " evict-hints=" << wave.evict_hints.size() << "\n";
  }
  if (shown < static_cast<int64_t>(waves_.size())) {
    out << "plan: ... " << (waves_.size() - static_cast<size_t>(shown))
        << " more waves\n";
  }
  return out.str();
}

}  // namespace tpcp
