// Update schedules for the iterative refinement phase (Sections V and VI).
//
// A schedule is a cyclic sequence of factor-update steps. Each step updates
// the sub-factor A^(i)_(ki) and touches exactly one data unit ⟨i, ki⟩
// (Definition 4), so the schedule induces the unit-access trace the buffer
// manager sees.
//
//  - Mode-centric (MC, Algorithm 1): for each mode i, for each partition ki.
//    Cycle length = Σ K_i (one virtual iteration per cycle).
//  - Block-centric (Algorithm 2): for each block position k in traversal
//    order, for each mode i. Cycle length = N · |K|. Traversal orders:
//    fiber (FO), Z-order (ZO), Hilbert-order (HO).

#ifndef TPCP_SCHEDULE_UPDATE_SCHEDULE_H_
#define TPCP_SCHEDULE_UPDATE_SCHEDULE_H_

#include <string>
#include <vector>

#include "grid/grid_partition.h"

namespace tpcp {

/// The scheduling strategies evaluated in the paper (Table III), plus two
/// ablation orders: snake (boustrophedon fiber traversal — fiber order
/// with alternating direction, removing the end-of-fiber jump) and random
/// (a locality-free lower bound on reuse).
enum class ScheduleType {
  kModeCentric,   // MC
  kFiberOrder,    // FO
  kZOrder,        // ZO
  kHilbertOrder,  // HO
  kSnakeOrder,    // SN (ablation)
  kRandomOrder,   // RND (ablation)
};

const char* ScheduleTypeName(ScheduleType type);

/// True for the Algorithm-2 family (FO/ZO/HO and the SN/RND ablations):
/// cycles that visit blocks and interleave modes, whose native conflict
/// segmentation degrades to singleton waves. Mode-centric is the one
/// schedule whose cycle is already mode-contiguous.
bool IsBlockCentric(ScheduleType type);

/// A mode-partition pair ⟨i, ki⟩ — the unit of data access (Definition 4).
struct ModePartition {
  int mode = 0;
  int64_t part = 0;

  bool operator==(const ModePartition& other) const {
    return mode == other.mode && part == other.part;
  }
  bool operator<(const ModePartition& other) const {
    return mode != other.mode ? mode < other.mode : part < other.part;
  }
};

/// One factor-update step of a schedule.
struct UpdateStep {
  /// Block position being visited. For mode-centric schedules the block is
  /// a representative ([*,...,ki,...,*] collapsed to ki with 0 elsewhere);
  /// the update itself only depends on (mode, part).
  BlockIndex block;
  /// Mode whose sub-factor is updated.
  int mode = 0;

  /// The data unit this step touches.
  ModePartition unit() const {
    return ModePartition{mode, block[static_cast<size_t>(mode)]};
  }
};

/// An immutable, tensor-filling cyclic update schedule (Definition 2).
class UpdateSchedule {
 public:
  /// Builds the cycle for `type` over `grid`.
  static UpdateSchedule Create(ScheduleType type, const GridPartition& grid);

  /// A schedule that executes `cycle` — a permutation of `base.cycle()`,
  /// e.g. the execution planner's conflict-aware reordering — in place of
  /// the base order. Type, grid and block order are inherited from `base`;
  /// only the step sequence changes. CHECK-fails if `cycle` is not the
  /// same length as the base cycle.
  static UpdateSchedule Reordered(const UpdateSchedule& base,
                                  std::vector<UpdateStep> cycle);

  ScheduleType type() const { return type_; }
  const GridPartition& grid() const { return grid_; }

  /// One full cycle C of the schedule S = C : C : ...
  const std::vector<UpdateStep>& cycle() const { return cycle_; }
  int64_t cycle_length() const {
    return static_cast<int64_t>(cycle_.size());
  }

  /// Steps per virtual iteration: Σ K_i (Definition 3).
  int64_t virtual_iteration_length() const { return virtual_iteration_len_; }

  /// The step at global position `pos` (pos >= 0, wraps cyclically).
  const UpdateStep& StepAt(int64_t pos) const {
    return cycle_[static_cast<size_t>(pos % cycle_length())];
  }

  /// The data unit the step at global position `pos` touches — the trace
  /// the buffer manager and the prefetch pipeline consume.
  ModePartition UnitAt(int64_t pos) const { return StepAt(pos).unit(); }

  /// The block traversal order underlying a block-centric cycle (empty for
  /// mode-centric). Exposed for tests and ablations.
  const std::vector<BlockIndex>& block_order() const { return block_order_; }

  std::string ToString() const;

 private:
  UpdateSchedule(ScheduleType type, GridPartition grid,
                 std::vector<UpdateStep> cycle,
                 std::vector<BlockIndex> block_order);

  ScheduleType type_;
  GridPartition grid_;
  std::vector<UpdateStep> cycle_;
  std::vector<BlockIndex> block_order_;
  int64_t virtual_iteration_len_ = 0;
};

/// Orders `blocks` by the given traversal. Exposed for ablation benches.
std::vector<BlockIndex> OrderBlocksFiber(const GridPartition& grid);
std::vector<BlockIndex> OrderBlocksZOrder(const GridPartition& grid);
std::vector<BlockIndex> OrderBlocksHilbert(const GridPartition& grid);
std::vector<BlockIndex> OrderBlocksSnake(const GridPartition& grid);
std::vector<BlockIndex> OrderBlocksRandom(const GridPartition& grid,
                                          uint64_t seed);

}  // namespace tpcp

#endif  // TPCP_SCHEDULE_UPDATE_SCHEDULE_H_
