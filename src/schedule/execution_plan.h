// The Phase-2 execution plan: the single, immutable description of *how*
// one refinement run executes a schedule — computed once by the Planner
// (schedule/planner.h) and then executed verbatim by every consumer.
//
// Before the plan existed, three layers re-derived overlapping pieces of
// the same structure ad hoc: the engine segmented the cycle into
// conflict-free batches, the prefetch pipeline kept its own lookahead
// window bookkeeping, and the replacement policy rebuilt a next-use oracle
// from the schedule. The plan computes all of it up front, from one
// (possibly reordered) step sequence, so the pieces can never disagree:
//
//  - an ordered step sequence (`schedule()`): the source cycle, optionally
//    permuted by the planner's conflict-aware reordering pass;
//  - waves: the maximal conflict-free step batches of that sequence, each
//    carrying its common mode and eviction hints (units going dead after
//    the wave — exactly what the forward policy will pick as victims);
//    the async pipeline reserves units in this order, `prefetch_depth()`
//    steps ahead of the step in flight;
//  - per-step shard chunks: steps in singleton waves shard their Eq.-3
//    slab accumulation into fixed chunks of `shard_chunk_blocks()` slab
//    blocks (0 = serial), reduced in slab order;
//  - one next-use oracle (`lookahead()`), shared by the forward
//    replacement policy and the hint computation.
//
// Determinism rule: the plan's *step order* and *shard chunking* — the
// math-shaping parts — are a pure function of (schedule, reorder options,
// shard option, certification inputs: rank/policy/buffer budget). They
// never depend on compute threads or prefetch depth, which only shape
// waves' execution; so factors and fit traces are bit-identical for every
// compute_threads × prefetch_depth combination executing one plan, and a
// resume replaying the same plan (fingerprint-checked) continues exactly.

#ifndef TPCP_SCHEDULE_EXECUTION_PLAN_H_
#define TPCP_SCHEDULE_EXECUTION_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "schedule/lookahead.h"
#include "schedule/update_schedule.h"

namespace tpcp {

/// One conflict-free wave of the plan: cycle positions [begin, end). All
/// steps share `mode` and have pairwise-distinct partitions, so they may
/// execute concurrently with bit-identical results.
struct PlanWave {
  int64_t begin = 0;
  int64_t end = 0;
  /// The one mode every step of the wave updates.
  int mode = 0;
  /// Units this wave touches whose next use lies at least one virtual
  /// iteration beyond the wave — dead for the near future, the exact
  /// victims the forward policy will choose. Recorded for observability
  /// (plan summaries) and tests; the policy consumes the same lookahead.
  std::vector<ModePartition> evict_hints;

  int64_t size() const { return end - begin; }
};

/// Planning outcome statistics (certification + width accounting).
struct PlanStats {
  bool reorder_requested = false;
  /// True when a reordered cycle was adopted (certification passed, or
  /// certification was explicitly skipped).
  bool reorder_applied = false;
  /// The window (in steps) of the adopted reordering; 0 when none was
  /// adopted. May be narrower than requested: the planner ladders down
  /// through halved windows until one passes the parity gate.
  int64_t reorder_window = 0;
  /// True when the swap simulation ran (certify option + a buffer budget).
  bool certified = false;
  /// Simulated swaps per virtual iteration of the source order.
  double swaps_before = 0.0;
  /// Simulated swaps per virtual iteration of the reordered candidate
  /// (== swaps_before when no reordering was requested).
  double swaps_after = 0.0;
  int64_t max_width_before = 0;
  int64_t max_width_after = 0;
  /// Steps whose slab accumulation shards (singleton waves, sharding on,
  /// slab larger than one chunk).
  int64_t sharded_steps = 0;

  /// Swaps/vi of the order the plan actually executes.
  double effective_swaps() const {
    return reorder_applied ? swaps_after : swaps_before;
  }
};

/// Immutable execution plan over one schedule. Build with Planner::Build.
class ExecutionPlan {
 public:
  ExecutionPlan(UpdateSchedule schedule, std::vector<PlanWave> waves,
                int64_t shard_chunk_blocks, int prefetch_depth,
                std::shared_ptr<const ScheduleLookahead> lookahead,
                PlanStats stats);

  /// The executable step sequence (the reordered cycle when reordering was
  /// adopted). Consumers must drive *this* schedule — its cycle order is
  /// the plan's identity.
  const UpdateSchedule& schedule() const { return schedule_; }

  const std::vector<PlanWave>& waves() const { return waves_; }
  const PlanStats& stats() const { return stats_; }

  int64_t cycle_length() const { return schedule_.cycle_length(); }
  int64_t virtual_iteration_length() const {
    return schedule_.virtual_iteration_length();
  }
  /// Slab blocks per shard for sharded steps (0 = sharding off).
  int64_t shard_chunk_blocks() const { return shard_chunk_blocks_; }
  int prefetch_depth() const { return prefetch_depth_; }

  const UpdateStep& StepAt(int64_t pos) const {
    return schedule_.StepAt(pos);
  }
  ModePartition UnitAt(int64_t pos) const { return schedule_.UnitAt(pos); }

  /// The wave containing global position `pos` (the segmentation repeats
  /// every cycle; positions are cycle-relative inside the returned wave).
  const PlanWave& WaveAt(int64_t pos) const;

  /// First global position after the wave containing `pos`. Same
  /// cycle-boundary contract as ConflictAnalysis::BatchEndAfter: a cursor
  /// at exactly k·cycle_length belongs to cycle k's *first* wave, so the
  /// result is strictly greater than `pos` — a resumed run never executes
  /// an empty wave.
  int64_t WaveEndAfter(int64_t pos) const;

  /// Shard chunk (slab blocks per shard) for the step at `pos`; 0 means
  /// the serial slab accumulation. Decided by the *plan* wave width —
  /// never by how a wave was split at execution time — so a resumed or
  /// thread-limited run shards identically.
  int64_t ShardBlocksAt(int64_t pos) const;

  int64_t max_wave_width() const { return stats_.max_width_after; }

  /// The next-use oracle over the plan's order, shared with the forward
  /// replacement policy so victim choice and hints agree by construction.
  const std::shared_ptr<const ScheduleLookahead>& lookahead() const {
    return lookahead_;
  }

  /// Hash of everything math-shaping (step order, grid geometry, shard
  /// chunk). Recorded in Phase-2 checkpoints; a resume whose rebuilt plan
  /// fingerprints differently is rejected instead of silently diverging.
  uint64_t fingerprint() const { return fingerprint_; }

  /// Grep-able multi-line summary: a `plan:` header line, a `plan:`
  /// parity line, and the first `max_waves` per-wave lines.
  std::string Summary(int64_t max_waves = 8) const;

 private:
  UpdateSchedule schedule_;
  std::vector<PlanWave> waves_;
  std::vector<size_t> wave_of_;  // cycle position -> index into waves_
  int64_t shard_chunk_blocks_;
  int prefetch_depth_;
  std::shared_ptr<const ScheduleLookahead> lookahead_;
  PlanStats stats_;
  uint64_t fingerprint_ = 0;
};

}  // namespace tpcp

#endif  // TPCP_SCHEDULE_EXECUTION_PLAN_H_
