#include "schedule/planner.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "core/swap_simulator.h"
#include "schedule/conflict.h"
#include "util/logging.h"

namespace tpcp {

DistributedPlan::DistributedPlan(const ExecutionPlan* plan, int64_t rank,
                                 int num_workers)
    : plan_(plan),
      catalog_(plan->schedule().grid(), rank),
      num_workers_(num_workers) {
  TPCP_CHECK_GE(num_workers_, 1);
  const uint64_t gram_bytes =
      static_cast<uint64_t>(rank) * static_cast<uint64_t>(rank) *
      sizeof(double);
  TPCP_CHECK_LE(num_workers_, 64);  // reader_mask_ is a 64-bit bitmask
  const int64_t cycle = plan_->cycle_length();
  step_bytes_.reserve(static_cast<size_t>(cycle));
  for (int64_t pos = 0; pos < cycle; ++pos) {
    const int mode = plan_->StepAt(pos).mode;
    // G^(i)_(ki) plus one M^(i)_l per slab block.
    step_bytes_.push_back(
        gram_bytes *
        (1 + static_cast<uint64_t>(catalog_.SlabBlocks(mode))));
  }
  // Weighted ownership: assign units heaviest-first to the least-loaded
  // worker, weighting each unit by the work it induces per cycle — its
  // step count times its slab+factor bytes. Deterministic tie-breaks
  // (weight desc, mode asc, part asc; lowest worker id) let coordinator
  // and workers rebuild the identical map from (plan, rank, N). Must run
  // before the liveness pass below: reader_mask_ is ownership-derived.
  const GridPartition& grid = plan_->schedule().grid();
  const int num_modes = grid.num_modes();
  owner_offset_.assign(static_cast<size_t>(num_modes) + 1, 0);
  for (int m = 0; m < num_modes; ++m) {
    owner_offset_[static_cast<size_t>(m) + 1] =
        owner_offset_[static_cast<size_t>(m)] + grid.parts(m);
  }
  owner_.assign(static_cast<size_t>(owner_offset_.back()), 0);
  std::vector<uint64_t> occurrences(owner_.size(), 0);
  for (int64_t pos = 0; pos < cycle; ++pos) {
    ++occurrences[static_cast<size_t>(UnitIndex(plan_->UnitAt(pos)))];
  }
  struct WeightedUnit {
    uint64_t weight;
    ModePartition unit;
  };
  std::vector<WeightedUnit> units;
  units.reserve(owner_.size());
  for (const ModePartition& unit : catalog_.AllUnits()) {
    const uint64_t weight =
        occurrences[static_cast<size_t>(UnitIndex(unit))] *
        catalog_.UnitBytes(unit);
    units.push_back({weight, unit});
  }
  std::sort(units.begin(), units.end(),
            [](const WeightedUnit& a, const WeightedUnit& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              if (a.unit.mode != b.unit.mode) return a.unit.mode < b.unit.mode;
              return a.unit.part < b.unit.part;
            });
  std::vector<uint64_t> load(static_cast<size_t>(num_workers_), 0);
  for (const WeightedUnit& wu : units) {
    int lightest = 0;
    for (int w = 1; w < num_workers_; ++w) {
      if (load[static_cast<size_t>(w)] < load[static_cast<size_t>(lightest)]) {
        lightest = w;
      }
    }
    owner_[static_cast<size_t>(UnitIndex(wu.unit))] = lightest;
    load[static_cast<size_t>(lightest)] += wu.weight;
  }
  // FNV-1a over (num_workers, owners in mode-major order). The or-1 keeps
  // 0 free to mean "not recorded" in checkpoints.
  uint64_t fp = 1469598103934665603ull;
  auto mix = [&fp](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      fp ^= (v >> (8 * b)) & 0xff;
      fp *= 1099511628211ull;
    }
  };
  mix(static_cast<uint64_t>(num_workers_));
  for (int owner : owner_) mix(static_cast<uint64_t>(owner));
  ownership_fingerprint_ = fp | 1ull;
  // Liveness precomputation. Both the refresh distance and the set of
  // cross-mode readers inside the window are relative to the position, so
  // they are cycle-periodic even when vi_len does not divide the cycle
  // (the fit-boundary test, which is not, runs per absolute position in
  // ImageLiveFor).
  next_refresh_delta_.reserve(static_cast<size_t>(cycle));
  reader_mask_.reserve(static_cast<size_t>(cycle));
  for (int64_t pos = 0; pos < cycle; ++pos) {
    const ModePartition unit = plan_->UnitAt(pos);
    int64_t delta = 1;
    while (delta < cycle && !(plan_->UnitAt(pos + delta) == unit)) ++delta;
    next_refresh_delta_.push_back(delta);
    uint64_t mask = 0;
    for (int64_t q = pos + 1; q < pos + delta; ++q) {
      if (plan_->StepAt(q).mode != unit.mode) {
        mask |= 1ull << OwnerAt(q);
      }
    }
    reader_mask_.push_back(mask);
  }
}

bool DistributedPlan::ImageLiveFor(int64_t pos, int worker) const {
  const size_t cycle_pos =
      static_cast<size_t>(pos % plan_->cycle_length());
  // Fit-live: a virtual-iteration boundary inside (pos, next_refresh]
  // means every worker's next SurrogateFit reads the image.
  const int64_t next = pos + next_refresh_delta_[cycle_pos];
  const int64_t vi_len = plan_->virtual_iteration_length();
  if (next / vi_len > pos / vi_len) return true;
  return (reader_mask_[cycle_pos] >> worker) & 1u;
}

bool DistributedPlan::CanDeferPast(int64_t pos, int worker,
                                   int64_t wave_end) const {
  const int64_t vi_len = plan_->virtual_iteration_length();
  // A wave that ends its virtual iteration is followed by the fit/persist
  // epilogue, which reads the complete metadata state: nothing live may be
  // deferred past it.
  if (wave_end % vi_len == 0) return false;
  // The next wave, exactly as the executor will clip it.
  const int64_t vi_end = (wave_end / vi_len + 1) * vi_len;
  const int64_t next_end = std::min(plan_->WaveEndAfter(wave_end), vi_end);
  const ModePartition unit = plan_->UnitAt(pos);
  if (plan_->StepAt(wave_end).mode == unit.mode) {
    // Same-mode steps never read mode-i metadata; the only hazard is the
    // image's own unit refreshing in the next wave, which would order the
    // stale deferred frame after the refresh's frame.
    const size_t cycle_pos =
        static_cast<size_t>(pos % plan_->cycle_length());
    return pos + next_refresh_delta_[cycle_pos] >= next_end;
  }
  // Cross-mode next wave: every step `worker` owns there reads the image.
  for (int64_t q = wave_end; q < next_end; ++q) {
    if (OwnerAt(q) == worker) return false;
  }
  return true;
}

uint64_t DistributedPlan::StepExchangeBytes(int64_t pos) const {
  return step_bytes_[static_cast<size_t>(pos % plan_->cycle_length())];
}

WorkerTraffic DistributedPlan::TrafficForRange(int worker, int64_t begin,
                                               int64_t end) const {
  WorkerTraffic traffic;
  for (int64_t pos = begin; pos < end; ++pos) {
    const uint64_t bytes = StepExchangeBytes(pos);
    if (OwnerAt(pos) == worker) {
      traffic.up_bytes += bytes;
      ++traffic.up_messages;
    } else if (ImageLiveFor(pos, worker)) {
      traffic.down_bytes += bytes;
      ++traffic.down_messages;
    }
  }
  return traffic;
}

uint64_t DistributedPlan::PersistBytesForRange(int worker, int64_t begin,
                                               int64_t end) const {
  std::set<ModePartition> units;
  // A window of at least one cycle updates every unit; no need to walk
  // more than one cycle's worth of positions.
  const int64_t stop = std::min(end, begin + plan_->cycle_length());
  for (int64_t pos = begin; pos < stop; ++pos) {
    const ModePartition unit = plan_->UnitAt(pos);
    if (OwnerOf(unit) == worker) units.insert(unit);
  }
  uint64_t bytes = 0;
  for (const ModePartition& unit : units) {
    bytes += catalog_.FactorBytes(unit);
  }
  return bytes;
}

std::string DistributedPlan::Summary() const {
  std::ostringstream out;
  const int64_t cycle = plan_->cycle_length();
  out << "dist: workers=" << num_workers_ << " cycle=" << cycle
      << " vi=" << plan_->virtual_iteration_length() << "\n";
  for (int worker = 0; worker < num_workers_; ++worker) {
    int64_t owned_steps = 0;
    std::set<ModePartition> owned_units;
    for (int64_t pos = 0; pos < cycle; ++pos) {
      const ModePartition unit = plan_->UnitAt(pos);
      if (OwnerOf(unit) == worker) {
        ++owned_steps;
        owned_units.insert(unit);
      }
    }
    const WorkerTraffic traffic = TrafficForRange(worker, 0, cycle);
    out << "dist: worker " << worker << " units=" << owned_units.size()
        << " steps/cycle=" << owned_steps
        << " xchg_up/cycle=" << traffic.up_bytes
        << " xchg_down/cycle=" << traffic.down_bytes << "\n";
  }
  return out.str();
}

std::vector<UpdateStep> ReorderCycleForWidth(
    const std::vector<UpdateStep>& cycle, int64_t window) {
  TPCP_CHECK_GE(window, 1);
  const int64_t n = static_cast<int64_t>(cycle.size());
  std::vector<bool> used(cycle.size(), false);
  std::vector<UpdateStep> out;
  out.reserve(cycle.size());
  int64_t next = 0;  // earliest unconsumed source position
  while (static_cast<int64_t>(out.size()) < n) {
    while (used[static_cast<size_t>(next)]) ++next;
    // Start a run at the earliest unconsumed step, then hoist every
    // same-mode step on a partition the run has not touched yet from the
    // following `window` source positions. Scanning in source order keeps
    // same-mode steps — and so every per-unit access sequence — in their
    // original relative order; only cross-mode order changes, which is
    // exactly the freedom a different (deterministic) plan may take.
    const int64_t start = next;
    const int mode = cycle[static_cast<size_t>(start)].mode;
    std::set<int64_t> parts;
    parts.insert(cycle[static_cast<size_t>(start)].unit().part);
    out.push_back(cycle[static_cast<size_t>(start)]);
    used[static_cast<size_t>(start)] = true;
    const int64_t scan_end = std::min(n, start + window);
    for (int64_t j = start + 1; j < scan_end; ++j) {
      if (used[static_cast<size_t>(j)]) continue;
      const UpdateStep& step = cycle[static_cast<size_t>(j)];
      if (step.mode == mode && parts.insert(step.unit().part).second) {
        out.push_back(step);
        used[static_cast<size_t>(j)] = true;
      }
    }
  }
  return out;
}

ExecutionPlan Planner::Build(const UpdateSchedule& schedule,
                             const PlannerOptions& options) {
  TPCP_CHECK_GE(options.shard_chunk_blocks, 0);
  TPCP_CHECK_GE(options.prefetch_depth, 0);

  PlanStats stats;
  stats.reorder_requested = options.reorder;
  stats.max_width_before = ConflictAnalysis(schedule).max_batch_size();
  stats.certified = options.certify && options.buffer_bytes > 0;

  auto simulate = [&](const UpdateSchedule& s) {
    return SimulateSteadyStateSwapsPerVi(s, options.rank, options.policy,
                                         options.buffer_bytes,
                                         options.certify_warmup_cycles,
                                         options.certify_measure_cycles,
                                         options.victim_hints);
  };
  if (stats.certified) stats.swaps_before = simulate(schedule);

  UpdateSchedule exec = schedule;
  if (options.reorder) {
    // Window ladder: the requested window first, then halvings down to
    // the mode count. Wider windows hoist wider waves but concentrate
    // more distinct units, so a tight buffer may fail their parity gate
    // while a narrower window still passes — the ladder adopts the widest
    // certified candidate instead of giving up outright. Deterministic:
    // fixed ladder, first passing candidate wins.
    const int64_t num_modes = schedule.grid().num_modes();
    // Clamp up to num_modes + 1: a window of `num_modes` or fewer steps
    // cannot hoist anything past a block visit, and silently evaluating
    // zero candidates would misreport "rejected" when nothing was tried.
    const int64_t requested =
        std::max(options.reorder_window > 0
                     ? options.reorder_window
                     : schedule.virtual_iteration_length(),
                 num_modes + 1);
    for (int64_t window = requested; window > num_modes; window /= 2) {
      UpdateSchedule candidate = UpdateSchedule::Reordered(
          schedule, ReorderCycleForWidth(schedule.cycle(), window));
      const int64_t width = ConflictAnalysis(candidate).max_batch_size();
      if (width <= stats.max_width_before) continue;  // no parallelism gain
      if (stats.certified) {
        stats.swaps_after = simulate(candidate);
        // Parity gate: adopt the wider order only when it swaps no more
        // than the source order under this run's policy and budget.
        if (stats.swaps_after > stats.swaps_before) continue;
      }
      exec = std::move(candidate);
      stats.reorder_applied = true;
      stats.reorder_window = window;
      break;
    }
  } else {
    stats.swaps_after = stats.swaps_before;
  }

  const ConflictAnalysis conflicts(exec);
  stats.max_width_after = conflicts.max_batch_size();
  auto lookahead = std::make_shared<ScheduleLookahead>(exec);

  const GridPartition& grid = exec.grid();
  const int64_t vi_len = exec.virtual_iteration_length();
  std::vector<PlanWave> waves;
  waves.reserve(conflicts.batches().size());
  for (const StepBatch& batch : conflicts.batches()) {
    PlanWave wave;
    wave.begin = batch.begin;
    wave.end = batch.end;
    wave.mode = exec.StepAt(batch.begin).mode;
    // Eviction hints: wave units whose next plan-order use is at least a
    // virtual iteration past the wave — dead for the near future. The
    // forward policy, reading the same oracle, will pick exactly these as
    // victims first; the hints make that visible in plan summaries.
    for (int64_t p = batch.begin; p < batch.end; ++p) {
      const ModePartition unit = exec.UnitAt(p);
      if (lookahead->NextUse(unit, batch.end - 1) - batch.end >= vi_len) {
        wave.evict_hints.push_back(unit);
      }
    }
    if (options.shard_chunk_blocks > 0 && wave.size() == 1) {
      const int64_t slab_blocks =
          grid.NumBlocks() / grid.parts(wave.mode);
      if (slab_blocks > options.shard_chunk_blocks) ++stats.sharded_steps;
    }
    waves.push_back(std::move(wave));
  }

  return ExecutionPlan(std::move(exec), std::move(waves),
                       options.shard_chunk_blocks, options.prefetch_depth,
                       std::move(lookahead), stats);
}

}  // namespace tpcp
