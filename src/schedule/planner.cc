#include "schedule/planner.h"

#include <algorithm>
#include <set>

#include "core/swap_simulator.h"
#include "schedule/conflict.h"
#include "util/logging.h"

namespace tpcp {

std::vector<UpdateStep> ReorderCycleForWidth(
    const std::vector<UpdateStep>& cycle, int64_t window) {
  TPCP_CHECK_GE(window, 1);
  const int64_t n = static_cast<int64_t>(cycle.size());
  std::vector<bool> used(cycle.size(), false);
  std::vector<UpdateStep> out;
  out.reserve(cycle.size());
  int64_t next = 0;  // earliest unconsumed source position
  while (static_cast<int64_t>(out.size()) < n) {
    while (used[static_cast<size_t>(next)]) ++next;
    // Start a run at the earliest unconsumed step, then hoist every
    // same-mode step on a partition the run has not touched yet from the
    // following `window` source positions. Scanning in source order keeps
    // same-mode steps — and so every per-unit access sequence — in their
    // original relative order; only cross-mode order changes, which is
    // exactly the freedom a different (deterministic) plan may take.
    const int64_t start = next;
    const int mode = cycle[static_cast<size_t>(start)].mode;
    std::set<int64_t> parts;
    parts.insert(cycle[static_cast<size_t>(start)].unit().part);
    out.push_back(cycle[static_cast<size_t>(start)]);
    used[static_cast<size_t>(start)] = true;
    const int64_t scan_end = std::min(n, start + window);
    for (int64_t j = start + 1; j < scan_end; ++j) {
      if (used[static_cast<size_t>(j)]) continue;
      const UpdateStep& step = cycle[static_cast<size_t>(j)];
      if (step.mode == mode && parts.insert(step.unit().part).second) {
        out.push_back(step);
        used[static_cast<size_t>(j)] = true;
      }
    }
  }
  return out;
}

ExecutionPlan Planner::Build(const UpdateSchedule& schedule,
                             const PlannerOptions& options) {
  TPCP_CHECK_GE(options.shard_chunk_blocks, 0);
  TPCP_CHECK_GE(options.prefetch_depth, 0);

  PlanStats stats;
  stats.reorder_requested = options.reorder;
  stats.max_width_before = ConflictAnalysis(schedule).max_batch_size();
  stats.certified = options.certify && options.buffer_bytes > 0;

  auto simulate = [&](const UpdateSchedule& s) {
    return SimulateSteadyStateSwapsPerVi(s, options.rank, options.policy,
                                         options.buffer_bytes,
                                         options.certify_warmup_cycles,
                                         options.certify_measure_cycles,
                                         options.victim_hints);
  };
  if (stats.certified) stats.swaps_before = simulate(schedule);

  UpdateSchedule exec = schedule;
  if (options.reorder) {
    // Window ladder: the requested window first, then halvings down to
    // the mode count. Wider windows hoist wider waves but concentrate
    // more distinct units, so a tight buffer may fail their parity gate
    // while a narrower window still passes — the ladder adopts the widest
    // certified candidate instead of giving up outright. Deterministic:
    // fixed ladder, first passing candidate wins.
    const int64_t num_modes = schedule.grid().num_modes();
    // Clamp up to num_modes + 1: a window of `num_modes` or fewer steps
    // cannot hoist anything past a block visit, and silently evaluating
    // zero candidates would misreport "rejected" when nothing was tried.
    const int64_t requested =
        std::max(options.reorder_window > 0
                     ? options.reorder_window
                     : schedule.virtual_iteration_length(),
                 num_modes + 1);
    for (int64_t window = requested; window > num_modes; window /= 2) {
      UpdateSchedule candidate = UpdateSchedule::Reordered(
          schedule, ReorderCycleForWidth(schedule.cycle(), window));
      const int64_t width = ConflictAnalysis(candidate).max_batch_size();
      if (width <= stats.max_width_before) continue;  // no parallelism gain
      if (stats.certified) {
        stats.swaps_after = simulate(candidate);
        // Parity gate: adopt the wider order only when it swaps no more
        // than the source order under this run's policy and budget.
        if (stats.swaps_after > stats.swaps_before) continue;
      }
      exec = std::move(candidate);
      stats.reorder_applied = true;
      stats.reorder_window = window;
      break;
    }
  } else {
    stats.swaps_after = stats.swaps_before;
  }

  const ConflictAnalysis conflicts(exec);
  stats.max_width_after = conflicts.max_batch_size();
  auto lookahead = std::make_shared<ScheduleLookahead>(exec);

  const GridPartition& grid = exec.grid();
  const int64_t vi_len = exec.virtual_iteration_length();
  std::vector<PlanWave> waves;
  waves.reserve(conflicts.batches().size());
  for (const StepBatch& batch : conflicts.batches()) {
    PlanWave wave;
    wave.begin = batch.begin;
    wave.end = batch.end;
    wave.mode = exec.StepAt(batch.begin).mode;
    // Eviction hints: wave units whose next plan-order use is at least a
    // virtual iteration past the wave — dead for the near future. The
    // forward policy, reading the same oracle, will pick exactly these as
    // victims first; the hints make that visible in plan summaries.
    for (int64_t p = batch.begin; p < batch.end; ++p) {
      const ModePartition unit = exec.UnitAt(p);
      if (lookahead->NextUse(unit, batch.end - 1) - batch.end >= vi_len) {
        wave.evict_hints.push_back(unit);
      }
    }
    if (options.shard_chunk_blocks > 0 && wave.size() == 1) {
      const int64_t slab_blocks =
          grid.NumBlocks() / grid.parts(wave.mode);
      if (slab_blocks > options.shard_chunk_blocks) ++stats.sharded_steps;
    }
    waves.push_back(std::move(wave));
  }

  return ExecutionPlan(std::move(exec), std::move(waves),
                       options.shard_chunk_blocks, options.prefetch_depth,
                       std::move(lookahead), stats);
}

}  // namespace tpcp
