#include "schedule/hilbert.h"

#include "util/logging.h"

namespace tpcp {
namespace {

// Skilling's "transpose" form: the Hilbert index's bits distributed across
// the coordinate words, X[0] carrying the most significant bit of each
// b-bit group.

void AxesToTranspose(uint64_t* x, int bits, int dims) {
  uint64_t m = uint64_t{1} << (bits - 1);
  // Inverse undo.
  for (uint64_t q = m; q > 1; q >>= 1) {
    const uint64_t p = q - 1;
    for (int i = 0; i < dims; ++i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        const uint64_t t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < dims; ++i) x[i] ^= x[i - 1];
  uint64_t t = 0;
  for (uint64_t q = m; q > 1; q >>= 1) {
    if (x[dims - 1] & q) t ^= q - 1;
  }
  for (int i = 0; i < dims; ++i) x[i] ^= t;
}

void TransposeToAxes(uint64_t* x, int bits, int dims) {
  const uint64_t n = uint64_t{2} << (bits - 1);
  // Gray decode by H ^ (H/2).
  uint64_t t = x[dims - 1] >> 1;
  for (int i = dims - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Undo excess work.
  for (uint64_t q = 2; q != n; q <<= 1) {
    const uint64_t p = q - 1;
    for (int i = dims - 1; i >= 0; --i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
}

}  // namespace

uint64_t HilbertIndex(const std::vector<int64_t>& point, int bits) {
  const int dims = static_cast<int>(point.size());
  TPCP_CHECK_GE(bits, 1);
  TPCP_CHECK_LE(static_cast<int64_t>(dims) * bits, 64);
  std::vector<uint64_t> x(point.begin(), point.end());
  for (int64_t c : point) {
    TPCP_CHECK(c >= 0 && c < (int64_t{1} << bits));
  }
  AxesToTranspose(x.data(), bits, dims);
  // Interleave the transpose words into a single index: bit (bits-1-j) of
  // x[i] becomes bit ((bits-1-j)*dims + (dims-1-i)) of the index.
  uint64_t index = 0;
  for (int j = 0; j < bits; ++j) {
    for (int i = 0; i < dims; ++i) {
      const uint64_t bit = (x[static_cast<size_t>(i)] >> j) & 1u;
      index |= bit << (j * dims + (dims - 1 - i));
    }
  }
  return index;
}

std::vector<int64_t> HilbertPoint(uint64_t index, int dims, int bits) {
  TPCP_CHECK_GE(bits, 1);
  TPCP_CHECK_LE(static_cast<int64_t>(dims) * bits, 64);
  std::vector<uint64_t> x(static_cast<size_t>(dims), 0);
  for (int j = 0; j < bits; ++j) {
    for (int i = 0; i < dims; ++i) {
      const uint64_t bit = (index >> (j * dims + (dims - 1 - i))) & 1u;
      x[static_cast<size_t>(i)] |= bit << j;
    }
  }
  TransposeToAxes(x.data(), bits, dims);
  return std::vector<int64_t>(x.begin(), x.end());
}

}  // namespace tpcp
