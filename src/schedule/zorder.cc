#include "schedule/zorder.h"

#include "util/logging.h"

namespace tpcp {

int BitsFor(int64_t n) {
  TPCP_CHECK_GE(n, 1);
  int bits = 0;
  while ((int64_t{1} << bits) < n) ++bits;
  return bits == 0 ? 1 : bits;
}

uint64_t ZValue(const std::vector<int64_t>& point, int bits) {
  const int dims = static_cast<int>(point.size());
  TPCP_CHECK_LE(static_cast<int64_t>(dims) * bits, 64);
  // Within each interleave group, mode 0 contributes the most significant
  // bit — matching the paper's example CZ(010, 011) = 001101.
  uint64_t z = 0;
  for (int j = 0; j < bits; ++j) {
    for (int i = 0; i < dims; ++i) {
      const uint64_t bit =
          (static_cast<uint64_t>(point[static_cast<size_t>(i)]) >> j) & 1u;
      z |= bit << (j * dims + (dims - 1 - i));
    }
  }
  return z;
}

std::vector<int64_t> ZDecode(uint64_t zvalue, int dims, int bits) {
  std::vector<int64_t> point(static_cast<size_t>(dims), 0);
  for (int j = 0; j < bits; ++j) {
    for (int i = 0; i < dims; ++i) {
      const uint64_t bit = (zvalue >> (j * dims + (dims - 1 - i))) & 1u;
      point[static_cast<size_t>(i)] |= static_cast<int64_t>(bit) << j;
    }
  }
  return point;
}

}  // namespace tpcp
