#include "schedule/update_schedule.h"

#include <algorithm>

#include "schedule/hilbert.h"
#include "schedule/zorder.h"
#include "util/logging.h"
#include "util/random.h"

namespace tpcp {

const char* ScheduleTypeName(ScheduleType type) {
  switch (type) {
    case ScheduleType::kModeCentric:
      return "MC";
    case ScheduleType::kFiberOrder:
      return "FO";
    case ScheduleType::kZOrder:
      return "ZO";
    case ScheduleType::kHilbertOrder:
      return "HO";
    case ScheduleType::kSnakeOrder:
      return "SN";
    case ScheduleType::kRandomOrder:
      return "RND";
  }
  return "?";
}

bool IsBlockCentric(ScheduleType type) {
  return type != ScheduleType::kModeCentric;
}

std::vector<BlockIndex> OrderBlocksFiber(const GridPartition& grid) {
  // Row-major order: the last mode varies fastest — a fiber at a time.
  return grid.AllBlocks();
}

namespace {

int MaxBits(const GridPartition& grid) {
  int64_t max_parts = 1;
  for (int m = 0; m < grid.num_modes(); ++m) {
    max_parts = std::max(max_parts, grid.parts(m));
  }
  return BitsFor(max_parts);
}

std::vector<BlockIndex> OrderBlocksByCurve(
    const GridPartition& grid,
    uint64_t (*curve)(const std::vector<int64_t>&, int)) {
  const int bits = MaxBits(grid);
  std::vector<BlockIndex> blocks = grid.AllBlocks();
  std::vector<std::pair<uint64_t, size_t>> keyed;
  keyed.reserve(blocks.size());
  for (size_t i = 0; i < blocks.size(); ++i) {
    keyed.emplace_back(curve(blocks[i], bits), i);
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<BlockIndex> out;
  out.reserve(blocks.size());
  for (const auto& [key, i] : keyed) out.push_back(blocks[i]);
  return out;
}

}  // namespace

std::vector<BlockIndex> OrderBlocksZOrder(const GridPartition& grid) {
  return OrderBlocksByCurve(grid, &ZValue);
}

std::vector<BlockIndex> OrderBlocksSnake(const GridPartition& grid) {
  // Boustrophedon traversal: like fiber order, but a mode reverses
  // direction every time its enclosing "row" advances, so consecutive
  // blocks are always grid neighbours. Mode m's direction therefore
  // depends on the parity of the mixed-radix index formed by the
  // more-significant coordinates (the number of row advances so far).
  std::vector<BlockIndex> order = grid.AllBlocks();
  for (BlockIndex& block : order) {
    int64_t prefix_index = 0;  // mixed-radix value of modes < m
    for (int m = 0; m < grid.num_modes(); ++m) {
      const int64_t original = block[static_cast<size_t>(m)];
      if (prefix_index % 2 == 1) {
        block[static_cast<size_t>(m)] = grid.parts(m) - 1 - original;
      }
      prefix_index = prefix_index * grid.parts(m) + original;
    }
  }
  return order;
}

std::vector<BlockIndex> OrderBlocksRandom(const GridPartition& grid,
                                          uint64_t seed) {
  std::vector<BlockIndex> order = grid.AllBlocks();
  Rng rng(seed);
  // Fisher–Yates.
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextUint64(i)]);
  }
  return order;
}

std::vector<BlockIndex> OrderBlocksHilbert(const GridPartition& grid) {
  return OrderBlocksByCurve(grid, &HilbertIndex);
}

UpdateSchedule::UpdateSchedule(ScheduleType type, GridPartition grid,
                               std::vector<UpdateStep> cycle,
                               std::vector<BlockIndex> block_order)
    : type_(type),
      grid_(std::move(grid)),
      cycle_(std::move(cycle)),
      block_order_(std::move(block_order)) {
  virtual_iteration_len_ = grid_.SumParts();
}

UpdateSchedule UpdateSchedule::Create(ScheduleType type,
                                      const GridPartition& grid) {
  std::vector<UpdateStep> cycle;
  std::vector<BlockIndex> block_order;

  if (type == ScheduleType::kModeCentric) {
    // Algorithm 1: each mode, each partition, once per cycle.
    cycle.reserve(static_cast<size_t>(grid.SumParts()));
    for (int mode = 0; mode < grid.num_modes(); ++mode) {
      for (int64_t k = 0; k < grid.parts(mode); ++k) {
        UpdateStep step;
        step.block.assign(static_cast<size_t>(grid.num_modes()), 0);
        step.block[static_cast<size_t>(mode)] = k;
        step.mode = mode;
        cycle.push_back(std::move(step));
      }
    }
  } else {
    switch (type) {
      case ScheduleType::kFiberOrder:
        block_order = OrderBlocksFiber(grid);
        break;
      case ScheduleType::kZOrder:
        block_order = OrderBlocksZOrder(grid);
        break;
      case ScheduleType::kHilbertOrder:
        block_order = OrderBlocksHilbert(grid);
        break;
      case ScheduleType::kSnakeOrder:
        block_order = OrderBlocksSnake(grid);
        break;
      case ScheduleType::kRandomOrder:
        block_order = OrderBlocksRandom(grid, /*seed=*/0x5eed);
        break;
      case ScheduleType::kModeCentric:
        break;  // unreachable
    }
    // Algorithm 2: all N mode updates at each visited block position.
    cycle.reserve(block_order.size() * static_cast<size_t>(grid.num_modes()));
    for (const BlockIndex& block : block_order) {
      for (int mode = 0; mode < grid.num_modes(); ++mode) {
        cycle.push_back(UpdateStep{block, mode});
      }
    }
  }
  return UpdateSchedule(type, grid, std::move(cycle), std::move(block_order));
}

UpdateSchedule UpdateSchedule::Reordered(const UpdateSchedule& base,
                                         std::vector<UpdateStep> cycle) {
  TPCP_CHECK_EQ(static_cast<int64_t>(cycle.size()), base.cycle_length())
      << "a reordered cycle must be a permutation of the base cycle";
  return UpdateSchedule(base.type(), base.grid(), std::move(cycle),
                        base.block_order());
}

std::string UpdateSchedule::ToString() const {
  return std::string(ScheduleTypeName(type_)) + " schedule, cycle=" +
         std::to_string(cycle_length()) + " steps, virtual-iteration=" +
         std::to_string(virtual_iteration_length()) + " steps (" +
         grid_.ToString() + ")";
}

}  // namespace tpcp
