#include "schedule/lookahead.h"

#include <algorithm>

namespace tpcp {

ScheduleLookahead::ScheduleLookahead(const UpdateSchedule& schedule)
    : cycle_len_(schedule.cycle_length()) {
  const auto& cycle = schedule.cycle();
  for (int64_t pos = 0; pos < cycle_len_; ++pos) {
    positions_[cycle[static_cast<size_t>(pos)].unit()].push_back(pos);
  }
}

int64_t ScheduleLookahead::NextUse(const ModePartition& unit,
                                   int64_t current_pos) const {
  auto it = positions_.find(unit);
  if (it == positions_.end() || it->second.empty()) {
    return current_pos + 2 * cycle_len_;  // never used: furthest possible
  }
  const std::vector<int64_t>& in_cycle = it->second;
  const int64_t base = current_pos - current_pos % cycle_len_;
  const int64_t offset = current_pos % cycle_len_;
  // First in-cycle position strictly after `offset`.
  auto next = std::upper_bound(in_cycle.begin(), in_cycle.end(), offset);
  if (next != in_cycle.end()) return base + *next;
  // Wraps into the next cycle.
  return base + cycle_len_ + in_cycle.front();
}

}  // namespace tpcp
