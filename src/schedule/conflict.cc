#include "schedule/conflict.h"

#include <set>

#include "util/logging.h"

namespace tpcp {

bool StepsConflictFree(const UpdateStep& a, const UpdateStep& b) {
  return a.mode == b.mode && !(a.unit() == b.unit());
}

ConflictAnalysis::ConflictAnalysis(const UpdateSchedule& schedule) {
  const std::vector<UpdateStep>& cycle = schedule.cycle();
  cycle_length_ = schedule.cycle_length();
  TPCP_CHECK_GT(cycle_length_, 0);
  batch_end_.resize(static_cast<size_t>(cycle_length_));

  // Greedy maximal segmentation: extend the current batch while the next
  // step shares its mode and names a partition the batch has not touched.
  // Pairwise distinctness within one mode is exactly pairwise
  // conflict-freedom, so the greedy run is a maximal conflict-free batch.
  int64_t begin = 0;
  std::set<int64_t> parts_in_batch;
  parts_in_batch.insert(cycle[0].unit().part);
  for (int64_t p = 1; p <= cycle_length_; ++p) {
    bool extend = false;
    if (p < cycle_length_) {
      const UpdateStep& step = cycle[static_cast<size_t>(p)];
      extend = step.mode == cycle[static_cast<size_t>(begin)].mode &&
               parts_in_batch.insert(step.unit().part).second;
    }
    if (!extend) {
      batches_.push_back(StepBatch{begin, p});
      max_batch_size_ = std::max(max_batch_size_, p - begin);
      for (int64_t q = begin; q < p; ++q) {
        batch_end_[static_cast<size_t>(q)] = p;
      }
      if (p < cycle_length_) {
        begin = p;
        parts_in_batch.clear();
        parts_in_batch.insert(cycle[static_cast<size_t>(p)].unit().part);
      }
    }
  }
}

int64_t ConflictAnalysis::BatchEndAfter(int64_t pos) const {
  TPCP_CHECK_GE(pos, 0);
  const int64_t cycle_base = (pos / cycle_length_) * cycle_length_;
  return cycle_base + batch_end_[static_cast<size_t>(pos % cycle_length_)];
}

}  // namespace tpcp
