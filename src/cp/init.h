// Factor matrix initialization strategies for ALS.

#ifndef TPCP_CP_INIT_H_
#define TPCP_CP_INIT_H_

#include <vector>

#include "linalg/matrix.h"
#include "tensor/dense_tensor.h"
#include "tensor/sparse_tensor.h"

namespace tpcp {

/// How ALS factor matrices are initialized.
enum class InitMethod {
  /// i.i.d. uniform [0,1) entries (Tensor Toolbox default).
  kRandom,
  /// Leading left singular vectors of each mode-n unfolding (HOSVD); columns
  /// beyond the mode dimension are padded with random entries.
  kHosvd,
};

/// Random factors: dims[i] x rank each, drawn from `seed`.
std::vector<Matrix> RandomFactors(const Shape& shape, int64_t rank,
                                  uint64_t seed);

/// HOSVD initialization for a dense tensor.
std::vector<Matrix> HosvdFactors(const DenseTensor& tensor, int64_t rank,
                                 uint64_t seed);

/// Builds factors per `method`. Sparse tensors always use kRandom (an HOSVD
/// of a sparse tensor would densify; the paper's workloads do not need it).
std::vector<Matrix> InitFactors(const DenseTensor& tensor, int64_t rank,
                                InitMethod method, uint64_t seed);
std::vector<Matrix> InitFactors(const SparseTensor& tensor, int64_t rank,
                                InitMethod method, uint64_t seed);

}  // namespace tpcp

#endif  // TPCP_CP_INIT_H_
