#include "cp/cp_nonneg.h"

#include "linalg/blas.h"
#include "linalg/elementwise.h"
#include "tensor/mttkrp.h"
#include "tensor/norms.h"

namespace tpcp {

KruskalTensor CpNonneg(const DenseTensor& tensor,
                       const CpNonnegOptions& options, CpAlsReport* report) {
  TPCP_CHECK_GE(options.rank, 1);
  for (int64_t i = 0; i < tensor.NumElements(); ++i) {
    TPCP_CHECK_GE(tensor.at_linear(i), 0.0)
        << "CpNonneg requires a nonnegative tensor";
  }
  const int n = tensor.num_modes();
  // Uniform [0,1) random init is already nonnegative.
  std::vector<Matrix> factors =
      RandomFactors(tensor.shape(), options.rank, options.seed);
  std::vector<Matrix> grams;
  grams.reserve(static_cast<size_t>(n));
  for (const Matrix& f : factors) grams.push_back(Gram(f));

  CpAlsReport local;
  CpAlsReport* rep = report != nullptr ? report : &local;
  *rep = CpAlsReport();

  double prev_fit = 0.0;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    for (int mode = 0; mode < n; ++mode) {
      const Matrix numerator = Mttkrp(tensor, factors, mode);
      Matrix s(options.rank, options.rank, 1.0);
      for (int k = 0; k < n; ++k) {
        if (k == mode) continue;
        HadamardInPlace(&s, grams[static_cast<size_t>(k)]);
      }
      Matrix& a = factors[static_cast<size_t>(mode)];
      Matrix denominator(a.rows(), options.rank);
      Gemm(Trans::kNo, a, Trans::kNo, s, 1.0, 0.0, &denominator);
      for (int64_t i = 0; i < a.size(); ++i) {
        a.data()[i] *= numerator.data()[i] /
                       (denominator.data()[i] + options.epsilon);
      }
      grams[static_cast<size_t>(mode)] = Gram(a);
    }
    const double fit = Fit(tensor, KruskalTensor(factors));
    rep->fit_trace.push_back(fit);
    rep->iterations = iter + 1;
    if (iter > 0 && fit - prev_fit < options.fit_tolerance) {
      prev_fit = fit;
      rep->converged = true;
      break;
    }
    prev_fit = fit;
  }
  rep->final_fit = prev_fit;

  KruskalTensor result(std::move(factors));
  result.Normalize();
  return result;
}

}  // namespace tpcp
