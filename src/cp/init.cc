#include "cp/init.h"

#include <algorithm>

#include "linalg/svd_jacobi.h"
#include "tensor/unfold.h"
#include "util/random.h"

namespace tpcp {

std::vector<Matrix> RandomFactors(const Shape& shape, int64_t rank,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<Matrix> factors;
  factors.reserve(static_cast<size_t>(shape.num_modes()));
  for (int m = 0; m < shape.num_modes(); ++m) {
    Matrix f(shape.dim(m), rank);
    for (int64_t i = 0; i < f.size(); ++i) f.data()[i] = rng.NextDouble();
    factors.push_back(std::move(f));
  }
  return factors;
}

std::vector<Matrix> HosvdFactors(const DenseTensor& tensor, int64_t rank,
                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<Matrix> factors;
  factors.reserve(static_cast<size_t>(tensor.num_modes()));
  for (int m = 0; m < tensor.num_modes(); ++m) {
    const Matrix unfolding = Unfold(tensor, m);
    const int64_t usable = std::min<int64_t>(rank, unfolding.rows());
    const Matrix leading = LeadingLeftSingularVectors(unfolding, usable);
    Matrix f(tensor.dim(m), rank);
    for (int64_t i = 0; i < f.rows(); ++i) {
      for (int64_t j = 0; j < rank; ++j) {
        f(i, j) = j < usable ? leading(i, j) : rng.NextDouble();
      }
    }
    factors.push_back(std::move(f));
  }
  return factors;
}

std::vector<Matrix> InitFactors(const DenseTensor& tensor, int64_t rank,
                                InitMethod method, uint64_t seed) {
  switch (method) {
    case InitMethod::kRandom:
      return RandomFactors(tensor.shape(), rank, seed);
    case InitMethod::kHosvd:
      return HosvdFactors(tensor, rank, seed);
  }
  return RandomFactors(tensor.shape(), rank, seed);
}

std::vector<Matrix> InitFactors(const SparseTensor& tensor, int64_t rank,
                                InitMethod /*method*/, uint64_t seed) {
  return RandomFactors(tensor.shape(), rank, seed);
}

}  // namespace tpcp
