#include "cp/cp_als.h"

#include "linalg/blas.h"
#include "linalg/cholesky.h"
#include "linalg/elementwise.h"
#include "tensor/mttkrp.h"

namespace tpcp {
namespace {

// Shared ALS loop over anything Mttkrp/Fit accept.
template <typename TensorT>
KruskalTensor CpAlsImpl(const TensorT& tensor, const CpAlsOptions& options,
                        CpAlsReport* report) {
  TPCP_CHECK_GE(options.rank, 1);
  const int n = tensor.num_modes();
  std::vector<Matrix> factors =
      InitFactors(tensor, options.rank, options.init, options.seed);

  std::vector<Matrix> grams;
  grams.reserve(static_cast<size_t>(n));
  for (const Matrix& f : factors) grams.push_back(Gram(f));

  CpAlsReport local_report;
  CpAlsReport* rep = report != nullptr ? report : &local_report;
  *rep = CpAlsReport();

  double prev_fit = 0.0;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    for (int mode = 0; mode < n; ++mode) {
      const Matrix m = Mttkrp(tensor, factors, mode);
      factors[static_cast<size_t>(mode)] =
          AlsFactorUpdate(m, grams, mode, options.ridge);
      grams[static_cast<size_t>(mode)] =
          Gram(factors[static_cast<size_t>(mode)]);
    }
    KruskalTensor current(factors);
    const double fit = Fit(tensor, current);
    rep->fit_trace.push_back(fit);
    rep->iterations = iter + 1;
    if (iter > 0 && fit - prev_fit < options.fit_tolerance) {
      rep->converged = true;
      prev_fit = fit;
      break;
    }
    prev_fit = fit;
  }
  rep->final_fit = prev_fit;

  KruskalTensor result(std::move(factors));
  result.Normalize();
  return result;
}

}  // namespace

void ApplyRidge(Matrix* s, double ridge) {
  if (ridge <= 0.0) return;
  const int64_t f = s->rows();
  double trace = 0.0;
  for (int64_t i = 0; i < f; ++i) trace += (*s)(i, i);
  const double lambda = ridge * trace / static_cast<double>(f);
  for (int64_t i = 0; i < f; ++i) (*s)(i, i) += lambda;
}

Matrix AlsFactorUpdate(const Matrix& mttkrp, const std::vector<Matrix>& grams,
                       int mode, double ridge) {
  const int64_t f = mttkrp.cols();
  Matrix s(f, f, 1.0);
  for (int k = 0; k < static_cast<int>(grams.size()); ++k) {
    if (k == mode) continue;
    HadamardInPlace(&s, grams[static_cast<size_t>(k)]);
  }
  ApplyRidge(&s, ridge);
  Matrix a;
  SolveGramSystem(mttkrp, s, &a);
  return a;
}

KruskalTensor CpAls(const DenseTensor& tensor, const CpAlsOptions& options,
                    CpAlsReport* report) {
  return CpAlsImpl(tensor, options, report);
}

KruskalTensor CpAls(const SparseTensor& tensor, const CpAlsOptions& options,
                    CpAlsReport* report) {
  return CpAlsImpl(tensor, options, report);
}

}  // namespace tpcp
