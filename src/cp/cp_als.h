// In-memory CP-ALS (alternating least squares) — the standard PARAFAC
// algorithm (Section III-B). Used directly as the Phase-1 per-block
// decomposer and as the in-memory reference baseline.

#ifndef TPCP_CP_CP_ALS_H_
#define TPCP_CP_CP_ALS_H_

#include <vector>

#include "cp/init.h"
#include "tensor/kruskal.h"
#include "tensor/norms.h"

namespace tpcp {

/// CP-ALS configuration.
struct CpAlsOptions {
  int64_t rank = 10;
  int max_iterations = 50;
  /// Stop when the per-iteration fit improvement drops below this.
  double fit_tolerance = 1e-4;
  /// Relative L2 (ridge) regularization of each factor solve: the normal
  /// matrix becomes S + ridge * (trace(S)/F) * I. Keeps factors bounded on
  /// under-determined blocks (F larger than the block content); 0 disables.
  double ridge = 0.0;
  InitMethod init = InitMethod::kRandom;
  uint64_t seed = 1;
};

/// Per-run diagnostics.
struct CpAlsReport {
  int iterations = 0;
  double final_fit = 0.0;
  bool converged = false;
  std::vector<double> fit_trace;
};

/// Runs CP-ALS on a dense tensor.
KruskalTensor CpAls(const DenseTensor& tensor, const CpAlsOptions& options,
                    CpAlsReport* report = nullptr);

/// Runs CP-ALS on a sparse tensor.
KruskalTensor CpAls(const SparseTensor& tensor, const CpAlsOptions& options,
                    CpAlsReport* report = nullptr);

/// One ALS factor update for `mode` given the MTTKRP result: solves
/// A = M (S + ridge * (trace(S)/F) * I)^{-1} with S = ⊛_{k≠mode} Gram_k.
/// Exposed for reuse by the block engines. grams[k] must equal
/// Gram(factors[k]) for all k; grams[mode] is ignored.
Matrix AlsFactorUpdate(const Matrix& mttkrp, const std::vector<Matrix>& grams,
                       int mode, double ridge = 0.0);

/// Adds ridge * (trace(S)/F) to S's diagonal in place (no-op for ridge=0).
void ApplyRidge(Matrix* s, double ridge);

}  // namespace tpcp

#endif  // TPCP_CP_CP_ALS_H_
