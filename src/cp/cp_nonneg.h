// Nonnegative CP decomposition via multiplicative updates — the algorithm
// family of the paper's reference [23] (Phan & Cichocki, block
// decomposition for very large-scale nonnegative tensor factorization).
//
// Factor updates follow the Lee–Seung rule generalized to tensors:
//   A <- A ⊛ M ⊘ (A S + eps),  M = MTTKRP, S = ⊛_{k≠n} Gram_k,
// which preserves nonnegativity and monotonically decreases the residual.

#ifndef TPCP_CP_CP_NONNEG_H_
#define TPCP_CP_CP_NONNEG_H_

#include "cp/cp_als.h"

namespace tpcp {

/// Options for the nonnegative decomposition.
struct CpNonnegOptions {
  int64_t rank = 10;
  int max_iterations = 100;
  double fit_tolerance = 1e-5;
  uint64_t seed = 1;
  /// Denominator guard of the multiplicative update.
  double epsilon = 1e-12;
};

/// Runs multiplicative-update nonnegative CP on a dense tensor with
/// nonnegative entries (negative input cells CHECK-fail).
KruskalTensor CpNonneg(const DenseTensor& tensor,
                       const CpNonnegOptions& options,
                       CpAlsReport* report = nullptr);

}  // namespace tpcp

#endif  // TPCP_CP_CP_NONNEG_H_
