// tpcpd — the multi-tenant decomposition server daemon (server/daemon.h).
//
//   tpcpd --tenant=alice,posix:///var/tpcp/alice,buffer_mb=64,threads=2 \
//         --tenant=bob,posix:///var/tpcp/bob \
//         --state=posix:///var/tpcp/state --port=7214
//
// Flags:
//   --tenant=name,dir|uri[,key=value...]   (repeatable, required; keys:
//                                           buffer_mb, threads, max_jobs,
//                                           token — a token= tenant only
//                                           accepts connections that
//                                           authenticated with it in their
//                                           hello / client --token)
//   --state=dir|uri        persisted job queue (default mem:// — queue
//                          dies with the process; use posix:// to make
//                          restarts resume the backlog)
//   --port=N               listen port on 127.0.0.1 (0 = ephemeral;
//                          default 7214)
//   --total-buffer-mb=N    daemon-wide buffer ceiling (default 256)
//   --total-threads=N      daemon-wide thread ceiling (default 8)
//   --max-jobs=N           daemon-wide running-job ceiling (default 4)
//
// The daemon logs one line per scheduler event ("admitted", "starts",
// "preempts", "preempted", "succeeded", "recovered", ...) on stdout, and
// stops gracefully on SIGINT/SIGTERM: running jobs checkpoint within one
// virtual iteration and are parked as preempted in the persisted state,
// so the next start resumes them bit-identically.

#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "server/daemon.h"
#include "server/net.h"
#include "server/tenant.h"
#include "util/parse.h"

using namespace tpcp;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

std::string ToStorageUri(const std::string& dir_or_uri) {
  if (dir_or_uri.find("://") != std::string::npos) return dir_or_uri;
  return "posix://" + dir_or_uri;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "tpcpd: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  TpcpdOptions options;
  int port = 7214;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      return Fail("unknown argument '" + arg + "' (flags are --key=value)");
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    if (key == "tenant") {
      auto tenant = ParseTenantSpec(value);
      if (!tenant.ok()) return Fail(tenant.status().ToString());
      tenant->storage_uri = ToStorageUri(tenant->storage_uri);
      options.tenants.push_back(*tenant);
      continue;
    }
    if (key == "state") {
      options.state_uri = ToStorageUri(value);
      continue;
    }
    const auto number = ParseInt64(value);
    if (!number.ok()) {
      return Fail("flag --" + key + " expects an integer, got '" + value +
                  "'");
    }
    if (key == "port") {
      port = static_cast<int>(*number);
    } else if (key == "total-buffer-mb") {
      options.total_buffer_bytes = static_cast<uint64_t>(*number) << 20;
    } else if (key == "total-threads") {
      options.total_threads = static_cast<int>(*number);
    } else if (key == "max-jobs") {
      options.max_running_jobs = static_cast<int>(*number);
    } else {
      return Fail("unknown flag --" + key);
    }
  }
  if (options.tenants.empty()) {
    return Fail(
        "at least one --tenant=name,dir|uri[,key=value...] is required");
  }
  options.log = [](const std::string& line) {
    std::printf("%s\n", line.c_str());
    std::fflush(stdout);
  };

  auto daemon = Tpcpd::Start(std::move(options));
  if (!daemon.ok()) return Fail(daemon.status().ToString());
  auto server = TpcpdServer::Listen(daemon->get(), port);
  if (!server.ok()) return Fail(server.status().ToString());
  std::printf("tpcpd: listening on 127.0.0.1:%d\n", (*server)->bound_port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("tpcpd: shutting down\n");
  std::fflush(stdout);
  server->reset();   // stop taking requests first
  daemon->reset();   // then checkpoint + park running jobs
  return 0;
}
