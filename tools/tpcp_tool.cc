// tpcp_tool — command-line driver for the 2PCP library, built on the
// Session API (api/session.h).
//
//   tpcp_tool generate  <dir|uri> <I> <J> <K> <parts> [rank] [density] [seed]
//       Streams a synthetic low-rank dense tensor into a manifest-backed
//       block store under <dir>/tensor, partitioned <parts> ways per mode.
//       --slab-format=dense|coo|csf selects the block encoding (default
//       dense); every consumer reads every format.
//
//   tpcp_tool decompose <dir|uri> <rank> [schedule] [policy]
//                       [buffer-fraction] [prefetch-depth] [io-threads]
//       Decomposes <dir>/tensor with the solver named by --solver
//       (default 2pcp), writing factors to <dir>/factors and printing
//       timings, fit and I/O statistics.
//
//   tpcp_tool jobs      <specfile> [--workers] [--cancel-at-vi=IDX:VI,...]
//       Submits a batch of decompositions to a JobService — one job per
//       non-comment line of <specfile>, each line in `decompose` argument
//       syntax — runs them concurrently, renders live per-job progress on
//       stderr and prints one grep-able summary line per job. Cancelled
//       jobs leave a checkpoint; rerunning the same spec file resumes
//       them (shown as "resumed at vi N").
//
//   tpcp_tool plan      <dir|uri> <rank> [schedule] [policy]
//                       [buffer-fraction] [--plan-reorder] [...]
//       Prints the Phase-2 execution plan for the stored tensor's grid —
//       waves, batch widths, shard counts, predicted swaps before/after
//       conflict-aware reordering — without decomposing anything. Every
//       line is prefixed "plan:" so CI can grep it. With --workers=N the
//       cluster simulator additionally prints per-worker ownership
//       ("dist:" lines), predicted swaps / exchange bytes / transfer
//       seconds per virtual iteration ("cluster:" lines;
//       --link-latency-us and --link-bandwidth-mbps set the link price)
//       and the overlapped-vs-barrier wall-clock ("cluster-overlap:").
//       --workers=auto instead searches N=1..8 and prints one
//       "cluster-auto:" row per N plus the chosen fleet size
//       (--overlap=on picks by pipelined wall-clock, off by barrier).
//
//   tpcp_tool dist      <dir|uri> <rank> [decompose options] [--workers=N]
//                       [--heartbeat-ms=1000] [--max-respawns=2]
//                       [--degrade=off|shrink|single] [--overlap=on|off]
//       Distributed Phase 2: runs Phase 1 in-process, then spawns N local
//       worker processes (re-exec'ing this binary as `dist-worker`) and
//       drives them through the wave protocol (dist/coordinator.h).
//       Factors and fit trace are bit-identical to `decompose` with the
//       same arguments. A worker that dies or wedges mid-run is detected
//       via heartbeats, respawned from the last checkpoint up to
//       --max-respawns times, then the run degrades per --degrade (shed
//       the worker, or finish in-process); recovery lines print to
//       stdout ("dist: worker N failed ..."). --overlap=on pipelines the
//       wave relay into the next wave's compute window (bit-identical
//       output; the hidden relay volume prints as an "overlap:" line).
//       Needs a store worker processes can open — not mem://.
//       `dist-worker` is the internal worker entry point.
//
//   tpcp_tool simulate  <parts> <buffer-fraction>
//       Prints the exact per-virtual-iteration swap table for a cubic grid
//       (no data needed — swap counts are configuration-determined).
//
//   tpcp_tool solvers
//       Lists the registered solvers and storage schemes/wrappers.
//
//   tpcp_tool client <verb> [--host=127.0.0.1] [--port=7214] [...]
//       Thin client for a running tpcpd daemon (tools/tpcpd.cc): submit /
//       poll / await / list / cancel / tenant-stats over the
//       length-prefixed JSON wire protocol; prints the raw response.
//       `tpcp_tool client` alone shows the verb flags.
//
// <dir|uri> is either a plain directory (shorthand for posix://<dir>) or a
// storage URI: mem://, posix:///path, compressed+posix:///path?level=3,
// throttled+mem://?mbps=50&latency_ms=1, faulty+..., and any registered
// extension scheme.
//
// Optional settings are flags (accepted anywhere after the subcommand):
//   --solver=2pcp|naive-oocp|grid-parafac|haten2
//   --schedule=mc|fo|zo|ho|sn|rnd      --policy=lru|mru|for
//   --init=random|hosvd                --buffer-fraction=F
//   --prefetch-depth=N --io-threads=N  --threads=N (Phase-1 workers)
//   --compute-threads=N                (Phase-2 parallel refinement math)
//   --max-vi=N --max-seconds=S --seed=N
//   --fit-tolerance=T                  (Phase-2 stop; negative = never)
//   --plan-reorder                     (conflict-aware reordering, adopted
//                                       only under certified swap parity;
//                                       the default for block-centric
//                                       schedules — see --no-plan-reorder)
//   --no-plan-reorder                  (pin the source order: disable the
//                                       block-centric reordering default)
//   --reorder-window=N                 (reorder window in steps; 0 = one
//                                       virtual iteration)
//   --shard-blocks=N                   (slab blocks per shard for
//                                       singleton-wave steps; 0 = off)
//   --kernel-fma                       (fused-multiply-add refinement
//                                       kernels; fingerprinted — resumes
//                                       must keep the same setting)
//   --policy-hints                     (LRU/MRU take the plan's eviction
//                                       hints as victim advice)
//   --resume                           (continue from the persisted factor
//                                       store / Phase-2 checkpoint)
//   --param=key=value                  (solver-specific, repeatable)
//   --progress                         (live per-block / per-iteration lines
//                                       on stderr)
// The bare positional forms of the pre-Session tool keep working; every
// numeric argument is parsed checked — garbage is an error, not a zero.

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/job_service.h"
#include "api/session.h"
#include "core/cost_model.h"
#include "core/names.h"
#include "core/progress_observer.h"
#include "core/swap_simulator.h"
#include "core/phase2_engine.h"
#include "core/two_phase_cp.h"
#include "data/synthetic.h"
#include "dist/coordinator.h"
#include "dist/worker.h"
#include "grid/manifest.h"
#include "schedule/planner.h"
#include "server/json.h"
#include "server/net.h"
#include "util/format.h"
#include "util/parse.h"

using namespace tpcp;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage:\n"
      "  %s generate  <dir|uri> <I> <J> <K> <parts> [rank=10] [density=1.0] "
      "[seed=42] [--slab-format=dense|coo|csf]\n"
      "  %s decompose <dir|uri> <rank> [schedule=ho] [policy=for] "
      "[buffer-fraction=0.5] [prefetch-depth=0] [io-threads=2]\n"
      "             [--solver=2pcp] [--init=random] [--threads=1] "
      "[--compute-threads=1] [--max-vi=100] [--max-seconds=0] [--seed=1]\n"
      "             [--fit-tolerance=0.01] [--resume] "
      "[--param=key=value ...] [--progress]\n"
      "  %s jobs      <specfile> [--workers=2] [--total-threads=0]\n"
      "             [--cancel-at-vi=IDX:VI,...] [--quiet]\n"
      "             (each specfile line: decompose arguments; # comments)\n"
      "  %s plan      <dir|uri> <rank> [schedule=ho] [policy=for] "
      "[buffer-fraction=0.5]\n"
      "             [--plan-reorder] [--reorder-window=0] "
      "[--shard-blocks=0]\n"
      "             [--prefetch-depth=0] [--plan-waves=8] "
      "[--workers=0|N|auto]\n"
      "             [--link-latency-us=100] [--link-bandwidth-mbps=1250] "
      "[--overlap=on|off]\n"
      "  %s dist      <dir|uri> <rank> [decompose options] [--workers=2]\n"
      "              [--heartbeat-ms=1000] [--max-respawns=2]"
      " [--degrade=off|shrink|single] [--overlap=on|off]\n"
      "  %s simulate  <parts> <buffer-fraction>\n"
      "  %s solvers\n"
      "schedules: %s   policies: %s\n",
      argv0, argv0, argv0, argv0, argv0, argv0, argv0,
      ScheduleTypeChoices().c_str(), PolicyTypeChoices().c_str());
  return 2;
}

/// Command line split into positionals and --key[=value] flags.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;
  std::map<std::string, std::string> params;  // from repeated --param=k=v
};

bool SplitTokens(const std::vector<std::string>& tokens, Args* out) {
  for (const std::string& arg : tokens) {
    if (arg.rfind("--", 0) != 0) {
      out->positional.push_back(arg);
      continue;
    }
    const size_t eq = arg.find('=');
    const std::string key = arg.substr(2, eq == std::string::npos
                                              ? std::string::npos
                                              : eq - 2);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key.empty()) {
      std::fprintf(stderr, "malformed flag '%s'\n", arg.c_str());
      return false;
    }
    if (key == "param") {
      const size_t peq = value.find('=');
      if (peq == std::string::npos || peq == 0) {
        std::fprintf(stderr, "--param expects key=value, got '%s'\n",
                     value.c_str());
        return false;
      }
      out->params[value.substr(0, peq)] = value.substr(peq + 1);
    } else {
      out->flags[key] = value;
    }
  }
  return true;
}

bool SplitArgs(int argc, char** argv, int first, Args* out) {
  std::vector<std::string> tokens;
  tokens.reserve(static_cast<size_t>(argc - first));
  for (int i = first; i < argc; ++i) tokens.push_back(argv[i]);
  return SplitTokens(tokens, out);
}

/// A plain directory is shorthand for posix://<dir>.
std::string ToStorageUri(const std::string& dir_or_uri) {
  if (dir_or_uri.find("://") != std::string::npos) return dir_or_uri;
  return "posix://" + dir_or_uri;
}

bool ReportBad(const char* what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return false;
}

/// Flag/positional accessors with checked parsing. `pos` is the index into
/// the positional list a legacy caller would have used (-1: flag-only).
class OptionReader {
 public:
  OptionReader(const Args& args, size_t first_positional)
      : args_(args), next_(first_positional) {}

  bool ok() const { return ok_; }

  /// Call after reading every known option: a flag nobody consumed is a
  /// typo, and silently ignoring it would run a different configuration
  /// than the user asked for.
  bool NoUnknownFlags() {
    for (const auto& [key, value] : args_.flags) {
      if (consumed_.find(key) == consumed_.end()) {
        std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
        ok_ = false;
      }
    }
    return ok_;
  }

  std::string Text(const char* flag, const std::string& fallback) {
    const std::string* raw = Raw(flag, /*consumes_positional=*/true);
    return raw != nullptr ? *raw : fallback;
  }

  int64_t Int(const char* flag, int64_t fallback, bool positional_too = true,
              int64_t min = std::numeric_limits<int64_t>::min(),
              int64_t max = std::numeric_limits<int64_t>::max()) {
    const std::string* raw = Raw(flag, positional_too);
    if (raw == nullptr) return fallback;
    auto value = ParseInt64(*raw);
    if (!value.ok()) {
      ok_ = ReportBad(flag, value.status());
      return fallback;
    }
    if (*value < min || *value > max) {
      ok_ = ReportBad(flag, Status::InvalidArgument(
                                *raw + " is outside [" +
                                std::to_string(min) + ", " +
                                std::to_string(max) + "]"));
      return fallback;
    }
    return *value;
  }

  double Double(const char* flag, double fallback, bool positional_too,
                double min, double max) {
    const std::string* raw = Raw(flag, positional_too);
    if (raw == nullptr) return fallback;
    auto value = ParseDouble(*raw);
    if (!value.ok()) {
      ok_ = ReportBad(flag, value.status());
      return fallback;
    }
    if (*value < min || *value > max) {
      ok_ = ReportBad(flag, Status::InvalidArgument(
                                *raw + " is outside [" +
                                std::to_string(min) + ", " +
                                std::to_string(max) + "]"));
      return fallback;
    }
    return *value;
  }

  bool Present(const char* flag) {
    consumed_.insert(flag);
    return args_.flags.find(flag) != args_.flags.end();
  }

 private:
  /// The flag value if set, else the next unconsumed positional (when
  /// `consumes_positional`), else nullptr.
  const std::string* Raw(const char* flag, bool consumes_positional) {
    consumed_.insert(flag);
    const auto it = args_.flags.find(flag);
    if (it != args_.flags.end()) return &it->second;
    if (consumes_positional && next_ < args_.positional.size()) {
      return &args_.positional[next_++];
    }
    return nullptr;
  }

  const Args& args_;
  size_t next_;
  bool ok_ = true;
  std::set<std::string> consumed_;
};

/// --progress: live lines on stderr, kept off stdout so the summary stays
/// grep-able.
class StderrProgress : public ProgressObserver {
 public:
  void OnPhase1BlockDone(int64_t done, int64_t total,
                         double block_fit) override {
    std::fprintf(stderr, "phase1: block %lld/%lld fit %.4f\n",
                 static_cast<long long>(done), static_cast<long long>(total),
                 block_fit);
  }
  void OnPhase1Done(double seconds, double mean_block_fit) override {
    std::fprintf(stderr, "phase1: done in %.2fs (mean block fit %.4f)\n",
                 seconds, mean_block_fit);
  }
  void OnVirtualIteration(int iteration, double surrogate_fit,
                          uint64_t swap_ins) override {
    std::fprintf(stderr, "phase2: vi %d fit %.4f (%llu swap-ins)\n",
                 iteration, surrogate_fit,
                 static_cast<unsigned long long>(swap_ins));
  }
  void OnPhase2Done(int virtual_iterations, bool converged,
                    double surrogate_fit, const BufferStats& stats) override {
    std::fprintf(stderr,
                 "phase2: done after %d vi (%s), fit %.4f, "
                 "%llu prefetch hits, %.2fs stalled\n",
                 virtual_iterations, converged ? "converged" : "cap",
                 surrogate_fit,
                 static_cast<unsigned long long>(stats.prefetch_hits),
                 stats.stall_seconds);
  }
};

int Generate(int argc, char** argv) {
  Args args;
  if (!SplitArgs(argc, argv, 2, &args)) return Usage(argv[0]);
  if (args.positional.size() < 5) return Usage(argv[0]);

  OptionReader opts(args, 1);
  const int64_t i = opts.Int("I", 0, true, 1);
  const int64_t j = opts.Int("J", 0, true, 1);
  const int64_t k = opts.Int("K", 0, true, 1);
  const int64_t parts = opts.Int("parts", 0, true, 1);
  LowRankSpec spec;
  spec.rank = opts.Int("rank", 10, true, 1);
  spec.density = opts.Double("density", 1.0, true, 0.0, 1.0);
  spec.seed = static_cast<uint64_t>(opts.Int("seed", 42, true, 0));
  spec.noise_level = 0.05;
  const std::string format_name = opts.Text("slab-format", "dense");
  if (!opts.NoUnknownFlags()) return 2;
  SlabFormat format = SlabFormat::kDense;
  if (!SlabFormatFromName(format_name.c_str(), &format)) {
    std::fprintf(stderr,
                 "--slab-format expects dense, coo or csf, got '%s'\n",
                 format_name.c_str());
    return 2;
  }
  spec.shape = Shape({i, j, k});

  auto grid = GridPartition::CreateUniform(spec.shape, parts);
  if (!grid.ok()) return ReportBad("generate", grid.status()), 1;

  auto session = Session::Open({ToStorageUri(args.positional[0])});
  if (!session.ok()) return ReportBad("open storage", session.status()), 1;
  auto store = (*session)->CreateTensorStore(*grid, format);
  if (!store.ok()) return ReportBad("create store", store.status()), 1;
  if (Status s = GenerateLowRankIntoStore(spec, *store); !s.ok()) {
    return ReportBad("generate", s), 1;
  }
  auto bytes = (*store)->TotalBytes();
  std::printf("wrote %s tensor as %lld %s blocks (%s) under %s\n",
              spec.shape.ToString().c_str(),
              static_cast<long long>(grid->NumBlocks()),
              SlabFormatName(format),
              bytes.ok() ? HumanBytes(*bytes).c_str() : "?",
              args.positional[0].c_str());
  return 0;
}

/// One decomposition request: the shared vocabulary of the `decompose`
/// subcommand and of every line of a `jobs` spec file.
struct DecomposeConfig {
  std::string uri;
  std::string solver = "2pcp";
  TwoPhaseCpOptions options;
  std::map<std::string, std::string> params;
  bool progress = false;
};

/// Parses "<dir|uri> <rank> [schedule] [policy] [buffer-fraction]
/// [prefetch-depth] [io-threads]" plus the shared flags. Returns false
/// (with the problem reported on stderr) on any malformed piece.
bool ParseDecomposeConfig(const Args& args, DecomposeConfig* config) {
  if (args.positional.empty() ||
      (args.positional.size() < 2 && args.flags.count("rank") == 0)) {
    std::fprintf(stderr, "decompose needs <dir|uri> and a rank\n");
    return false;
  }
  TwoPhaseCpOptions& options = config->options;
  OptionReader opts(args, 1);
  options.rank = opts.Int("rank", 10, true, 1);
  const std::string schedule = opts.Text("schedule", "ho");
  const std::string policy = opts.Text("policy", "for");
  options.buffer_fraction =
      opts.Double("buffer-fraction", 0.5, true, 1e-6, 1.0);
  constexpr int64_t kIntMax = std::numeric_limits<int>::max();
  options.prefetch_depth =
      static_cast<int>(opts.Int("prefetch-depth", 0, true, 0, kIntMax));
  options.io_threads =
      static_cast<int>(opts.Int("io-threads", 2, true, 1, kIntMax));
  options.compute_threads =
      static_cast<int>(opts.Int("compute-threads", 1, false, 1, kIntMax));
  config->solver = opts.Text("solver", "2pcp");
  const std::string init = opts.Text("init", "random");
  options.num_threads =
      static_cast<int>(opts.Int("threads", 1, false, 1, kIntMax));
  options.max_virtual_iterations =
      static_cast<int>(opts.Int("max-vi", 100, false, 1, kIntMax));
  options.max_seconds =
      opts.Double("max-seconds", 0.0, false, 0.0, 1e9);
  options.fit_tolerance =
      opts.Double("fit-tolerance", options.fit_tolerance, false, -1.0, 1.0);
  options.seed = static_cast<uint64_t>(opts.Int("seed", 1, false, 0));
  options.plan_reorder = opts.Present("plan-reorder");
  // --no-plan-reorder pins the source order: block-centric schedules
  // otherwise reorder by default (plan_reorder_auto).
  if (opts.Present("no-plan-reorder")) {
    if (options.plan_reorder) {
      std::fprintf(stderr,
                   "--plan-reorder and --no-plan-reorder conflict\n");
      return false;
    }
    options.plan_reorder_auto = false;
  }
  options.plan_reorder_window =
      opts.Int("reorder-window", 0, false, 0, kIntMax);
  options.shard_slab_blocks =
      opts.Int("shard-blocks", 0, false, 0, kIntMax);
  options.kernel_fma = opts.Present("kernel-fma");
  options.policy_victim_hints = opts.Present("policy-hints");
  options.resume_phase2 = opts.Present("resume");
  config->progress = opts.Present("progress");
  if (!opts.ok()) return false;

  if (auto parsed = ScheduleTypeFromName(schedule); parsed.ok()) {
    options.schedule = *parsed;
  } else {
    return ReportBad("--schedule", parsed.status());
  }
  if (auto parsed = PolicyTypeFromName(policy); parsed.ok()) {
    options.policy = *parsed;
  } else {
    return ReportBad("--policy", parsed.status());
  }
  if (auto parsed = InitMethodFromName(init); parsed.ok()) {
    options.init = *parsed;
  } else {
    return ReportBad("--init", parsed.status());
  }
  if (!opts.NoUnknownFlags()) return false;
  config->uri = ToStorageUri(args.positional[0]);
  config->params = args.params;
  return true;
}

int Decompose(int argc, char** argv) {
  Args args;
  if (!SplitArgs(argc, argv, 2, &args)) return Usage(argv[0]);

  DecomposeConfig config;
  if (!ParseDecomposeConfig(args, &config)) return 2;
  TwoPhaseCpOptions& options = config.options;
  const std::string& solver = config.solver;

  StderrProgress progress;
  if (config.progress) options.observer = &progress;

  auto session = Session::Open({config.uri});
  if (!session.ok()) return ReportBad("open storage", session.status()), 1;
  auto store = (*session)->OpenTensorStore();
  if (!store.ok()) {
    ReportBad("open tensor store", store.status());
    std::fprintf(stderr, "(run `generate` first?)\n");
    return 1;
  }
  const GridPartition& grid = (*store)->grid();

  auto result = (*session)->Decompose(solver, options, config.params);
  if (!result.ok()) return ReportBad("decompose", result.status()), 1;
  const SolveResult& r = *result;

  std::printf("decomposed %s (grid %s) at rank %lld via %s [%s + %s]\n",
              grid.tensor_shape().ToString().c_str(), grid.ToString().c_str(),
              static_cast<long long>(options.rank), r.solver.c_str(),
              ScheduleTypeName(options.schedule),
              PolicyTypeName(options.policy));
  if (r.failed) {
    std::printf("  FAILED (expected baseline failure): %s\n",
                r.failure.c_str());
    return 0;
  }
  if (r.phase2_start_iteration > 0) {
    std::printf("  resumed at vi %d (phase 1 skipped)\n",
                r.phase2_start_iteration);
  }
  if (r.blocks_decomposed > 0) {
    std::printf("  phase 1: %.2fs over %lld blocks (mean block fit %.4f)\n",
                r.phase1_seconds,
                static_cast<long long>(r.blocks_decomposed),
                r.phase1_mean_block_fit);
    std::printf("  phase 2: %.2fs, %d virtual iterations (%s), surrogate "
                "fit %.4f\n",
                r.phase2_seconds, r.virtual_iterations,
                r.converged ? "converged" : "cap", r.surrogate_fit);
    std::printf("  buffer:  %.2f swaps/virtual-iteration, hit rate %.1f%%\n",
                r.swaps_per_virtual_iteration,
                100.0 * r.buffer_stats.HitRate());
    std::printf("  overlap: prefetch depth %d, %llu prefetch hits, "
                "%.2fs stalled, %.2fs writing back\n",
                options.prefetch_depth,
                static_cast<unsigned long long>(
                    r.buffer_stats.prefetch_hits),
                r.buffer_stats.stall_seconds,
                r.buffer_stats.writeback_seconds);
  } else {
    std::printf("  %d iterations (%s%s), fit %.4f in %.2fs\n",
                r.virtual_iterations,
                r.converged ? "converged" : "cap",
                r.timed_out ? ", timed out" : "", r.surrogate_fit,
                r.total_seconds);
    if (r.bytes_streamed > 0) {
      std::printf("  streamed %s of tensor data\n",
                  HumanBytes(r.bytes_streamed).c_str());
    }
    if (r.mapreduce_jobs > 0) {
      std::printf("  %llu MapReduce jobs, %s shuffled (%llu records)\n",
                  static_cast<unsigned long long>(r.mapreduce_jobs),
                  HumanBytes(r.shuffle_bytes).c_str(),
                  static_cast<unsigned long long>(r.shuffle_records));
    }
  }
  std::printf("  I/O:     %s\n", (*session)->env()->stats().ToString().c_str());
  if ((*session)->factor_store() != nullptr) {
    std::printf("factors written under %s\n", args.positional[0].c_str());
  }
  return 0;
}

/// `plan` — print the Phase-2 execution plan for a stored tensor's grid.
/// Shares `decompose`'s argument vocabulary (the plan is exactly what a
/// decompose run with these arguments would execute) plus --plan-waves=N
/// to bound the per-wave listing. Certification always runs here so the
/// summary carries predicted swaps even when reordering is off.
int Plan(int argc, char** argv) {
  Args args;
  if (!SplitArgs(argc, argv, 2, &args)) return Usage(argv[0]);
  // Peel the plan-only flags off before the shared parser (which rejects
  // unknown flags).
  const auto peel_int = [&args](const char* flag, int64_t fallback,
                                int64_t min) -> int64_t {
    auto it = args.flags.find(flag);
    if (it == args.flags.end()) return fallback;
    auto parsed = ParseInt64(it->second);
    if (!parsed.ok() || *parsed < min) return -1;
    args.flags.erase(it);
    return *parsed;
  };
  const int64_t plan_waves = peel_int("plan-waves", 8, 0);
  if (plan_waves < 0) {
    std::fprintf(stderr, "--plan-waves expects a non-negative integer\n");
    return 2;
  }
  // --workers=auto searches fleet sizes with the overlap-aware simulator
  // instead of pricing one explicit N.
  bool workers_auto = false;
  if (auto it = args.flags.find("workers");
      it != args.flags.end() && it->second == "auto") {
    workers_auto = true;
    args.flags.erase(it);
  }
  const int64_t workers = peel_int("workers", 0, 0);
  if (workers < 0 || workers > 64) {
    std::fprintf(stderr, "--workers expects an integer in [0, 64] or "
                 "'auto'\n");
    return 2;
  }
  bool plan_overlap = false;
  if (auto it = args.flags.find("overlap"); it != args.flags.end()) {
    if (it->second == "on") {
      plan_overlap = true;
    } else if (it->second != "off") {
      std::fprintf(stderr, "--overlap expects on or off\n");
      return 2;
    }
    args.flags.erase(it);
  }
  const int64_t link_latency_us = peel_int("link-latency-us", 100, 0);
  const int64_t link_bandwidth_mbps = peel_int("link-bandwidth-mbps", 1250, 1);
  if (link_latency_us < 0 || link_bandwidth_mbps < 1) {
    std::fprintf(stderr, "bad --link-latency-us / --link-bandwidth-mbps\n");
    return 2;
  }
  DecomposeConfig config;
  if (!ParseDecomposeConfig(args, &config)) return 2;
  const TwoPhaseCpOptions& options = config.options;

  auto session = Session::Open({config.uri});
  if (!session.ok()) return ReportBad("open storage", session.status()), 1;
  auto store = (*session)->OpenTensorStore();
  if (!store.ok()) {
    ReportBad("open tensor store", store.status());
    std::fprintf(stderr, "(run `generate` first?)\n");
    return 1;
  }
  const GridPartition& grid = (*store)->grid();

  const UpdateSchedule schedule =
      UpdateSchedule::Create(options.schedule, grid);
  // The exact planner inputs a decompose run with these arguments would
  // use — with certification forced on so the summary always carries
  // predicted swaps, reordering requested or not.
  PlannerOptions planner_options = Phase2PlannerOptions(options, grid);
  planner_options.certify = true;
  const ExecutionPlan plan = Planner::Build(schedule, planner_options);
  std::printf("plan: tensor=%s buffer=%s (of %s total)\n",
              grid.tensor_shape().ToString().c_str(),
              HumanBytes(planner_options.buffer_bytes).c_str(),
              HumanBytes(UnitCatalog(grid, options.rank).TotalBytes())
                  .c_str());
  std::fputs(plan.Summary(plan_waves).c_str(), stdout);
  ClusterSimConfig csim;
  csim.policy = options.policy;
  csim.buffer_bytes = planner_options.buffer_bytes;
  csim.victim_hints = options.policy_victim_hints;
  csim.link.latency_seconds = static_cast<double>(link_latency_us) * 1e-6;
  csim.link.bandwidth_bytes_per_second =
      static_cast<double>(link_bandwidth_mbps) * 1e6;
  csim.overlap = plan_overlap;
  if (workers > 0) {
    // Cluster view: ownership split plus the simulator's predicted
    // per-worker swaps, exchange bytes and link-priced transfer time.
    const DistributedPlan dplan(&plan, options.rank,
                                static_cast<int>(workers));
    std::fputs(dplan.Summary().c_str(), stdout);
    csim.num_workers = static_cast<int>(workers);
    for (const ClusterWorkerCost& cost :
         SimulateCluster(dplan, options.rank, csim)) {
      std::printf("%s\n", cost.ToString().c_str());
    }
    std::printf("%s\n",
                SimulateClusterOverlap(dplan, options.rank, csim)
                    .ToString()
                    .c_str());
  } else if (workers_auto) {
    // Fleet-size search: price every N, pick the cheapest per-vi
    // wall-clock (pipelined when --overlap=on, barrier otherwise).
    // N=1 is the degenerate single-worker fleet — the comparison floor.
    int best = 0;
    double best_seconds = 0.0;
    for (int n = 1; n <= 8; ++n) {
      const DistributedPlan dplan(&plan, options.rank, n);
      csim.num_workers = n;
      const ClusterOverlapCost cost =
          SimulateClusterOverlap(dplan, options.rank, csim);
      const double seconds = plan_overlap ? cost.pipelined_seconds_per_vi
                                          : cost.barrier_seconds_per_vi;
      std::printf("cluster-auto: workers=%d barrier_s/vi=%.6f "
                  "pipelined_s/vi=%.6f hidden_s/vi=%.6f\n",
                  n, cost.barrier_seconds_per_vi,
                  cost.pipelined_seconds_per_vi,
                  cost.hidden_seconds_per_vi);
      if (best == 0 || seconds < best_seconds) {
        best = n;
        best_seconds = seconds;
      }
    }
    std::printf("cluster-auto: chosen workers=%d predicted_s/vi=%.6f "
                "(%s)\n",
                best, best_seconds,
                plan_overlap ? "pipelined" : "barrier");
  }
  return 0;
}

int Simulate(int argc, char** argv) {
  Args args;
  if (!SplitArgs(argc, argv, 2, &args)) return Usage(argv[0]);
  if (args.positional.size() < 2) return Usage(argv[0]);
  OptionReader opts(args, 0);
  const int64_t parts = opts.Int("parts", 0, true, 2, 64);
  const double fraction =
      opts.Double("buffer-fraction", 0.0, true, 1e-6, 1.0);
  if (!opts.NoUnknownFlags()) return 2;
  if (parts < 2 || fraction <= 0.0 || fraction > 1.0) return Usage(argv[0]);

  std::printf("swaps per virtual iteration, %lld^3 partitions, buffer %.3f "
              "of total requirement\n",
              static_cast<long long>(parts), fraction);
  std::printf("%-6s %10s %10s %10s\n", "sched", "LRU", "MRU", "FOR");
  for (ScheduleType schedule :
       {ScheduleType::kModeCentric, ScheduleType::kFiberOrder,
        ScheduleType::kZOrder, ScheduleType::kHilbertOrder,
        ScheduleType::kSnakeOrder, ScheduleType::kRandomOrder}) {
    std::printf("%-6s", ScheduleTypeName(schedule));
    for (PolicyType policy :
         {PolicyType::kLru, PolicyType::kMru, PolicyType::kForward}) {
      SwapSimConfig config;
      config.grid = GridPartition::Uniform(Shape({64, 64, 64}), parts);
      config.rank = 8;
      config.schedule = schedule;
      config.policy = policy;
      config.buffer_fraction = fraction;
      std::printf(" %10.2f",
                  SimulateSwaps(config).swaps_per_virtual_iteration);
    }
    std::printf("\n");
  }
  return 0;
}

/// Cancels its job once the refinement reaches a target virtual
/// iteration — deterministic cancellation for tests and demos, driven by
/// the engine's own progress events (JobService forwards them without
/// holding its lock, so calling Cancel from here is safe).
class CancelAtVi : public ProgressObserver {
 public:
  CancelAtVi(JobService* service, JobId id, int vi)
      : service_(service), id_(id), vi_(vi) {}

  void OnVirtualIteration(int iteration, double surrogate_fit,
                          uint64_t swap_ins) override {
    (void)surrogate_fit;
    (void)swap_ins;
    if (iteration >= vi_ && !fired_.exchange(true)) {
      const Status s = service_->Cancel(id_);
      if (!s.ok()) ReportBad("cancel-at-vi", s);
    }
  }

 private:
  JobService* service_;
  JobId id_;
  int vi_;
  std::atomic<bool> fired_{false};
};

/// "IDX:VI[,IDX:VI...]" — 1-based job line index to cancel at iteration VI.
bool ParseCancelList(const std::string& value,
                     std::map<int64_t, int>* cancel_at) {
  std::istringstream in(value);
  std::string item;
  while (std::getline(in, item, ',')) {
    const size_t colon = item.find(':');
    auto idx = ParseInt64(item.substr(0, colon));
    auto vi = colon == std::string::npos
                  ? Result<int64_t>(Status::InvalidArgument("missing ':'"))
                  : ParseInt64(item.substr(colon + 1));
    if (!idx.ok() || !vi.ok() || *idx < 1 || *vi < 1) {
      std::fprintf(stderr,
                   "--cancel-at-vi expects IDX:VI pairs (1-based), got "
                   "'%s'\n",
                   item.c_str());
      return false;
    }
    (*cancel_at)[*idx] = static_cast<int>(*vi);
  }
  return true;
}

int Jobs(int argc, char** argv) {
  Args args;
  if (!SplitArgs(argc, argv, 2, &args)) return Usage(argv[0]);
  if (args.positional.empty()) return Usage(argv[0]);
  OptionReader opts(args, 1);
  constexpr int64_t kIntMax = std::numeric_limits<int>::max();
  JobServiceOptions service_options;
  service_options.num_workers =
      static_cast<int>(opts.Int("workers", 2, false, 1, 64));
  service_options.total_threads =
      static_cast<int>(opts.Int("total-threads", 0, false, 0, kIntMax));
  const bool quiet = opts.Present("quiet");
  std::map<int64_t, int> cancel_at;
  if (opts.Present("cancel-at-vi") &&
      !ParseCancelList(args.flags.at("cancel-at-vi"), &cancel_at)) {
    return 2;
  }
  if (!opts.ok() || !opts.NoUnknownFlags()) return 2;

  // One job per non-comment line, in `decompose` argument syntax.
  const std::string& spec_path = args.positional[0];
  std::ifstream file(spec_path);
  if (!file) {
    std::fprintf(stderr, "cannot read spec file '%s'\n", spec_path.c_str());
    return 1;
  }
  std::vector<DecomposeConfig> configs;
  std::string line;
  int64_t line_number = 0;
  while (std::getline(file, line)) {
    ++line_number;
    std::istringstream fields(line);
    std::vector<std::string> tokens;
    std::string token;
    while (fields >> token) tokens.push_back(token);
    if (tokens.empty() || tokens.front()[0] == '#') continue;
    Args job_args;
    DecomposeConfig config;
    if (!SplitTokens(tokens, &job_args) ||
        !ParseDecomposeConfig(job_args, &config)) {
      std::fprintf(stderr, "%s:%lld: bad job line\n", spec_path.c_str(),
                   static_cast<long long>(line_number));
      return 2;
    }
    configs.push_back(std::move(config));
  }
  if (configs.empty()) {
    std::fprintf(stderr, "spec file '%s' has no jobs\n", spec_path.c_str());
    return 1;
  }
  for (const auto& [idx, vi] : cancel_at) {
    if (idx > static_cast<int64_t>(configs.size())) {
      std::fprintf(stderr, "--cancel-at-vi=%lld:... but only %zu jobs\n",
                   static_cast<long long>(idx), configs.size());
      return 2;
    }
  }

  // Declared before the service: workers may still invoke these observers
  // while the service shuts down on an early-error return below.
  std::vector<std::unique_ptr<CancelAtVi>> cancellers;
  JobService service(service_options);
  std::vector<JobId> ids;
  for (size_t i = 0; i < configs.size(); ++i) {
    DecomposeConfig& config = configs[i];
    if (config.progress) {
      std::fprintf(stderr,
                   "note: --progress is ignored in jobs mode (per-job "
                   "progress is rendered below)\n");
    }
    JobSpec spec;
    spec.session.env_uri = config.uri;
    spec.solver = config.solver;
    spec.options = config.options;
    spec.params = config.params;
    // JobIds are dense from 1 in submission order (api/job.h), so the
    // canceller can be armed with its id before Submit races it.
    const JobId expected_id = static_cast<JobId>(i) + 1;
    if (const auto it = cancel_at.find(expected_id); it != cancel_at.end()) {
      cancellers.push_back(
          std::make_unique<CancelAtVi>(&service, expected_id, it->second));
      spec.options.observer = cancellers.back().get();
    }
    auto id = service.Submit(std::move(spec));
    if (!id.ok()) return ReportBad("submit", id.status()), 1;
    if (*id != expected_id) {
      std::fprintf(stderr, "internal: unexpected job id\n");
      return 1;
    }
    ids.push_back(*id);
    if (!quiet) {
      std::fprintf(stderr, "job %lld: submitted %s via %s (rank %lld)\n",
                   static_cast<long long>(*id), config.uri.c_str(),
                   config.solver.c_str(),
                   static_cast<long long>(config.options.rank));
    }
  }

  // Render loop: one stderr line per observable change, until every job
  // is terminal.
  std::map<JobId, std::string> last_rendered;
  for (;;) {
    bool all_terminal = true;
    for (const JobInfo& info : service.List()) {
      char buffer[160];
      std::snprintf(buffer, sizeof(buffer),
                    "job %lld [%-9s] phase1 %lld/%lld%s | vi %d fit %.4f "
                    "(%llu swap-ins)",
                    static_cast<long long>(info.id),
                    JobStateName(info.state),
                    static_cast<long long>(info.progress.phase1_blocks_done),
                    static_cast<long long>(info.progress.phase1_blocks_total),
                    info.progress.phase1_done ? " done" : "",
                    info.progress.virtual_iteration, info.progress.fit,
                    static_cast<unsigned long long>(info.progress.swap_ins));
      std::string& last = last_rendered[info.id];
      if (!quiet && last != buffer) {
        last = buffer;
        std::fprintf(stderr, "%s\n", buffer);
      }
      if (!IsTerminal(info.state)) all_terminal = false;
    }
    if (all_terminal) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Grep-able summary, one line per job, in submission order.
  bool any_failed = false;
  for (JobId id : ids) {
    const JobInfo info = service.Poll(id).value();
    switch (info.state) {
      case JobState::kSucceeded: {
        const SolveResult& r = info.result;
        std::printf("job %lld: succeeded fit %.4f after %d vi%s "
                    "(wait %.2fs run %.2fs)\n",
                    static_cast<long long>(id), r.surrogate_fit,
                    r.virtual_iterations,
                    r.phase2_start_iteration > 0
                        ? (" resumed at vi " +
                           std::to_string(r.phase2_start_iteration))
                              .c_str()
                        : "",
                    info.wait_seconds, info.run_seconds);
        break;
      }
      case JobState::kCancelled:
        // A Phase-2 checkpoint only exists once the refinement started;
        // queued or mid-Phase-1 cancellations restart from scratch.
        std::printf("job %lld: cancelled at vi %d%s\n",
                    static_cast<long long>(id),
                    info.progress.virtual_iteration,
                    info.progress.phase1_done
                        ? " (checkpointed, resubmit to resume)"
                        : " (before refinement; resubmit restarts)");
        break;
      case JobState::kFailed:
        any_failed = true;
        std::printf("job %lld: failed: %s\n", static_cast<long long>(id),
                    info.status.ToString().c_str());
        break;
      default:
        any_failed = true;
        std::printf("job %lld: internal: non-terminal after drain\n",
                    static_cast<long long>(id));
        break;
    }
  }
  return any_failed ? 1 : 0;
}

// Thin tpcpd client: one verb, one frame round-trip, raw JSON response on
// stdout. Exit 0 when the server answered {"ok":true}.
int Client(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(
        stderr,
        "usage: %s client <verb> [--host=127.0.0.1] [--port=7214]\n"
        "                 [--compress=deflate] [--token=SECRET] ...\n"
        "(--token authenticates the connection as --tenant; required for\n"
        " tenants registered with token=)\n"
        "verbs:\n"
        "  submit --tenant=NAME [--name=LABEL] [--priority=N]\n"
        "         [--solver=2pcp] [--opt=key=value ...] [--param=k=v ...]\n"
        "         [--generate=IxJxK] [--parts=N] [--gen-rank=N]\n"
        "         [--noise=F] [--gen-seed=N]\n"
        "  poll --job=N | await --job=N [--timeout=S] | cancel --job=N\n"
        "  list [--tenant=NAME] [--state=queued|running|preempted|...]\n"
        "  tenant-stats\n",
        argv[0]);
    return 2;
  }
  const std::string verb = argv[2];
  std::string host = "127.0.0.1";
  int64_t port = 7214;
  bool want_compress = false;
  std::string token;
  JsonValue request = JsonValue::Object();
  request.Set("cmd", verb);
  JsonValue options = JsonValue::Object();
  JsonValue params = JsonValue::Object();
  JsonValue generate = JsonValue::Object();
  bool has_options = false, has_params = false, has_generate = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      std::fprintf(stderr, "client flags are --key=value, got '%s'\n",
                   arg.c_str());
      return 2;
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    const auto kv = [&]() -> Result<std::pair<std::string, std::string>> {
      const size_t peq = value.find('=');
      if (peq == std::string::npos || peq == 0) {
        return Status::InvalidArgument("--" + key +
                                       " expects key=value, got '" + value +
                                       "'");
      }
      return std::make_pair(value.substr(0, peq), value.substr(peq + 1));
    };
    if (key == "host") {
      host = value;
    } else if (key == "token") {
      token = value;
    } else if (key == "compress") {
      if (value != "deflate" && value != "none") {
        std::fprintf(stderr, "bad --compress '%s' (deflate|none)\n",
                     value.c_str());
        return 2;
      }
      want_compress = value == "deflate";
    } else if (key == "port") {
      const auto parsed = ParseInt64(value);
      if (!parsed.ok()) {
        std::fprintf(stderr, "bad --port '%s'\n", value.c_str());
        return 2;
      }
      port = *parsed;
    } else if (key == "tenant" || key == "name" || key == "solver" ||
               key == "state") {
      request.Set(key, value);
    } else if (key == "priority" || key == "job" || key == "parts" ||
               key == "gen-rank" || key == "gen-seed") {
      const auto parsed = ParseInt64(value);
      if (!parsed.ok()) {
        std::fprintf(stderr, "bad --%s '%s'\n", key.c_str(), value.c_str());
        return 2;
      }
      if (key == "parts") {
        generate.Set("parts", *parsed);
        has_generate = true;
      } else if (key == "gen-rank") {
        generate.Set("rank", *parsed);
        has_generate = true;
      } else if (key == "gen-seed") {
        generate.Set("seed", *parsed);
        has_generate = true;
      } else {
        request.Set(key, *parsed);
      }
    } else if (key == "timeout") {
      const auto parsed = ParseDouble(value);
      if (!parsed.ok()) {
        std::fprintf(stderr, "bad --timeout '%s'\n", value.c_str());
        return 2;
      }
      request.Set("timeout_seconds", *parsed);
    } else if (key == "noise") {
      const auto parsed = ParseDouble(value);
      if (!parsed.ok()) {
        std::fprintf(stderr, "bad --noise '%s'\n", value.c_str());
        return 2;
      }
      generate.Set("noise", *parsed);
      has_generate = true;
    } else if (key == "opt") {
      const auto pair = kv();
      if (!pair.ok()) {
        std::fprintf(stderr, "%s\n", pair.status().ToString().c_str());
        return 2;
      }
      options.Set(pair->first, pair->second);
      has_options = true;
    } else if (key == "param") {
      const auto pair = kv();
      if (!pair.ok()) {
        std::fprintf(stderr, "%s\n", pair.status().ToString().c_str());
        return 2;
      }
      params.Set(pair->first, pair->second);
      has_params = true;
    } else if (key == "generate") {
      // IxJxK dims list.
      JsonValue dims = JsonValue::Array();
      size_t start = 0;
      while (start <= value.size()) {
        const size_t x = value.find('x', start);
        const std::string piece = value.substr(
            start, x == std::string::npos ? std::string::npos : x - start);
        const auto parsed = ParseInt64(piece);
        if (!parsed.ok()) {
          std::fprintf(stderr, "bad --generate dims '%s'\n", value.c_str());
          return 2;
        }
        dims.Append(*parsed);
        if (x == std::string::npos) break;
        start = x + 1;
      }
      generate.Set("dims", std::move(dims));
      has_generate = true;
    } else {
      std::fprintf(stderr, "unknown client flag --%s\n", key.c_str());
      return 2;
    }
  }
  if (has_options) request.Set("options", std::move(options));
  if (has_params) request.Set("params", std::move(params));
  if (has_generate) request.Set("generate", std::move(generate));

  auto client = TpcpdClient::Connect(host, static_cast<int>(port));
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  if (want_compress) {
    // Best effort: an older daemon declines and we keep speaking plain.
    const auto granted = (*client)->NegotiateCompression();
    if (!granted.ok()) {
      std::fprintf(stderr, "%s\n", granted.status().ToString().c_str());
      return 1;
    }
  }
  if (!token.empty()) {
    const JsonValue* tenant = request.Find("tenant");
    if (tenant == nullptr) {
      std::fprintf(stderr, "--token requires --tenant=NAME\n");
      return 2;
    }
    const Status authed =
        (*client)->Authenticate(tenant->string_value(), token);
    if (!authed.ok()) {
      std::fprintf(stderr, "%s\n", authed.ToString().c_str());
      return 1;
    }
  }
  const auto response = (*client)->Call(request);
  if (!response.ok()) {
    std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", response->Serialize().c_str());
  const JsonValue* ok = response->Find("ok");
  return (ok != nullptr && ok->is_bool() && ok->bool_value()) ? 0 : 1;
}

/// `dist-worker` — internal entry point for the worker processes `dist`
/// spawns. Not part of the public surface; argv carries only the store
/// location and the rendezvous port (grid and options travel in the init
/// message).
int DistWorker(int argc, char** argv) {
  Args args;
  if (!SplitArgs(argc, argv, 2, &args)) return 2;
  OptionReader opts(args, 0);
  const std::string uri = opts.Text("uri", "");
  const std::string prefix = opts.Text("prefix", "factors");
  const int64_t port = opts.Int("port", 0, false, 1, 65535);
  const int64_t worker = opts.Int("worker", -1, false, 0, 63);
  if (!opts.ok() || !opts.NoUnknownFlags() || uri.empty() || port == 0 ||
      worker < 0) {
    std::fprintf(stderr,
                 "dist-worker needs --uri=... --port=N --worker=N\n");
    return 2;
  }
  auto opened = OpenEnv(uri);
  if (!opened.ok()) return ReportBad("dist-worker", opened.status()), 1;
  const Status s = ServeDistWorker(opened->get(), prefix,
                                   static_cast<int>(port),
                                   static_cast<int>(worker));
  if (!s.ok()) return ReportBad("dist-worker", s), 1;
  return 0;
}

/// `dist` — Phase 1 in-process, Phase 2 across N spawned worker
/// processes. Mirrors Session::RunSolver's factor-store lifecycle exactly
/// so the resulting store is byte-identical to `decompose` with the same
/// arguments.
int Dist(int argc, char** argv) {
  Args args;
  if (!SplitArgs(argc, argv, 2, &args)) return Usage(argv[0]);
  int64_t workers = 2;
  if (auto it = args.flags.find("workers"); it != args.flags.end()) {
    auto parsed = ParseInt64(it->second);
    if (!parsed.ok() || *parsed < 1 || *parsed > 64) {
      std::fprintf(stderr, "--workers expects an integer in [1, 64]\n");
      return 2;
    }
    workers = *parsed;
    args.flags.erase(it);
  }
  int64_t heartbeat_ms = 1000;
  if (auto it = args.flags.find("heartbeat-ms"); it != args.flags.end()) {
    auto parsed = ParseInt64(it->second);
    if (!parsed.ok() || *parsed < 0) {
      std::fprintf(stderr, "--heartbeat-ms expects an integer >= 0\n");
      return 2;
    }
    heartbeat_ms = *parsed;
    args.flags.erase(it);
  }
  int64_t max_respawns = 2;
  if (auto it = args.flags.find("max-respawns"); it != args.flags.end()) {
    auto parsed = ParseInt64(it->second);
    if (!parsed.ok() || *parsed < 0) {
      std::fprintf(stderr, "--max-respawns expects an integer >= 0\n");
      return 2;
    }
    max_respawns = *parsed;
    args.flags.erase(it);
  }
  DegradeMode degrade = DegradeMode::kShrink;
  if (auto it = args.flags.find("degrade"); it != args.flags.end()) {
    auto parsed = DegradeModeFromName(it->second);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 2;
    }
    degrade = *parsed;
    args.flags.erase(it);
  }
  bool overlap = false;
  if (auto it = args.flags.find("overlap"); it != args.flags.end()) {
    if (it->second == "on") {
      overlap = true;
    } else if (it->second != "off") {
      std::fprintf(stderr, "--overlap expects on or off\n");
      return 2;
    }
    args.flags.erase(it);
  }
  DecomposeConfig config;
  if (!ParseDecomposeConfig(args, &config)) return 2;
  TwoPhaseCpOptions& options = config.options;
  if (config.solver != "2pcp") {
    std::fprintf(stderr, "dist supports only the 2pcp solver\n");
    return 2;
  }
  if (config.uri.rfind("mem://", 0) == 0) {
    std::fprintf(stderr,
                 "dist workers are separate processes; the store must be "
                 "openable by all of them (posix://, not mem://)\n");
    return 2;
  }
  StderrProgress progress;
  if (config.progress) options.observer = &progress;

  auto session = Session::Open({config.uri});
  if (!session.ok()) return ReportBad("open storage", session.status()), 1;
  auto store = (*session)->OpenTensorStore();
  if (!store.ok()) {
    ReportBad("open tensor store", store.status());
    std::fprintf(stderr, "(run `generate` first?)\n");
    return 1;
  }
  const GridPartition& grid = (*store)->grid();
  Env* env = (*session)->env();

  // Factor-store lifecycle as Session::RunSolver: a fresh run must not
  // inherit a stale manifest; a resume must keep its checkpoint.
  const std::string factor_prefix = "factors";
  if (!options.resume_phase2) {
    const Status stale = env->DeleteFile(ManifestFileName(factor_prefix));
    if (!stale.ok() && !stale.IsNotFound()) {
      return ReportBad("dist", stale), 1;
    }
  }
  BlockFactorStore factors(env, factor_prefix, grid, options.rank);

  TwoPhaseCp cp(*store, &factors, options);
  if (!options.resume_phase2) {
    std::unique_ptr<ThreadPool> pool;
    if (options.num_threads > 1) {
      pool = std::make_unique<ThreadPool>(options.num_threads);
    }
    if (const Status s = cp.RunPhase1(pool.get()); !s.ok()) {
      return ReportBad("phase 1", s), 1;
    }
  }

  std::vector<pid_t> children;
  DistributedRunOptions dopts;
  dopts.num_workers = static_cast<int>(workers);
  dopts.heartbeat_ms = static_cast<int>(heartbeat_ms);
  dopts.max_respawns = static_cast<int>(max_respawns);
  dopts.degrade = degrade;
  dopts.overlap = overlap;
  // Recovery lines go to stdout so harnesses (the CI chaos-smoke job) can
  // grep for "respawning" / "degrading".
  dopts.log = [](const std::string& line) {
    std::printf("%s\n", line.c_str());
    std::fflush(stdout);
  };
  dopts.spawn_worker = [&children, &config](int port, int worker) -> Status {
    const pid_t pid = ::fork();
    if (pid < 0) return Status::IOError("fork failed");
    if (pid == 0) {
      const std::string uri_arg = "--uri=" + config.uri;
      const std::string port_arg = "--port=" + std::to_string(port);
      const std::string worker_arg = "--worker=" + std::to_string(worker);
      ::execl("/proc/self/exe", "tpcp_tool", "dist-worker", uri_arg.c_str(),
              port_arg.c_str(), worker_arg.c_str(),
              static_cast<char*>(nullptr));
      ::_exit(127);
    }
    children.push_back(pid);
    return Status::OK();
  };

  DistributedRunResult dist;
  const Status run = RunDistributedPhase2(&factors, options, dopts, &dist);
  // Reap all workers either way; on a coordinator error the closed
  // channels make them exit on their own.
  bool worker_failed = false;
  for (const pid_t pid : children) {
    int wstatus = 0;
    if (::waitpid(pid, &wstatus, 0) == pid) {
      if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
        worker_failed = true;
      }
    }
  }
  if (!run.ok()) return ReportBad("dist", run), 1;
  // After an in-run recovery, crashed/abandoned worker processes exiting
  // non-zero is the expected debris of a successful run.
  if (worker_failed && dist.respawns == 0 && dist.degrades == 0) {
    std::fprintf(stderr, "dist: a worker process exited with an error\n");
    return 1;
  }

  // Final manifest, as Session::RunSolver writes after a successful run.
  StoreManifest manifest;
  manifest.kind = StoreManifest::kFactorsKind;
  manifest.grid = grid;
  manifest.rank = options.rank;
  if (const Status s = WriteManifest(env, factor_prefix, manifest);
      !s.ok()) {
    return ReportBad("dist", s), 1;
  }

  const Phase2Result& p2 = dist.phase2;
  std::printf("dist: decomposed %s (grid %s) at rank %lld across %lld "
              "workers [%s + %s]\n",
              grid.tensor_shape().ToString().c_str(), grid.ToString().c_str(),
              static_cast<long long>(options.rank),
              static_cast<long long>(workers),
              ScheduleTypeName(options.schedule),
              PolicyTypeName(options.policy));
  if (p2.start_iteration > 0) {
    std::printf("  resumed at vi %d (phase 1 skipped)\n",
                p2.start_iteration);
  }
  std::printf("  phase 2: %.2fs, %d virtual iterations (%s), surrogate "
              "fit %.4f\n",
              p2.seconds, p2.virtual_iterations,
              p2.converged ? "converged" : "cap", p2.surrogate_fit);
  if (dist.respawns > 0 || dist.degrades > 0) {
    const std::string finish =
        dist.finished_single_process
            ? std::string("single-process")
            : std::to_string(dist.final_workers) + " worker(s)";
    std::printf("  recovery: %d respawn(s), %d degrade(s), finished %s, "
                "%s wasted\n",
                dist.respawns, dist.degrades, finish.c_str(),
                HumanBytes(dist.wasted_bytes).c_str());
  }
  if (overlap) {
    std::printf("  overlap: relayed %s inside compute windows (hid "
                "%.3fs)\n",
                HumanBytes(dist.overlapped_bytes).c_str(),
                dist.hidden_seconds);
  }
  for (int w = 0; w < dopts.num_workers; ++w) {
    const WorkerTraffic& t = dist.measured[static_cast<size_t>(w)];
    std::printf("  worker %d: xchg up %s / down %s (%lld msgs), "
                "persisted %s\n",
                w, HumanBytes(t.up_bytes).c_str(),
                HumanBytes(t.down_bytes).c_str(),
                static_cast<long long>(t.up_messages + t.down_messages),
                HumanBytes(
                    dist.measured_persist_bytes[static_cast<size_t>(w)])
                    .c_str());
  }
  std::printf("factors written under %s\n", args.positional[0].c_str());
  return 0;
}

int Solvers() {
  std::printf("solvers:");
  for (const std::string& name : Session::Solvers()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\nstorage schemes:");
  for (const std::string& name : EnvFactoryRegistry::Global().Schemes()) {
    std::printf(" %s://", name.c_str());
  }
  std::printf("\nstorage wrappers:");
  for (const std::string& name : EnvFactoryRegistry::Global().Wrappers()) {
    std::printf(" %s+", name.c_str());
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const std::string command = argv[1];
  if (command == "generate") return Generate(argc, argv);
  if (command == "decompose") return Decompose(argc, argv);
  if (command == "jobs") return Jobs(argc, argv);
  if (command == "plan") return Plan(argc, argv);
  if (command == "dist") return Dist(argc, argv);
  if (command == "dist-worker") return DistWorker(argc, argv);
  if (command == "simulate") return Simulate(argc, argv);
  if (command == "solvers") return Solvers();
  if (command == "client") return Client(argc, argv);
  return Usage(argv[0]);
}
