// tpcp_tool — command-line driver for the 2PCP library.
//
//   tpcp_tool generate  <dir> <I> <J> <K> <parts> [rank] [density] [seed]
//       Streams a synthetic low-rank dense tensor into a block store under
//       <dir>/tensor, partitioned <parts> ways per mode.
//
//   tpcp_tool decompose <dir> <rank> [schedule] [policy] [buffer-fraction]
//                       [prefetch-depth] [io-threads]
//       Runs the two-phase decomposition over <dir>/tensor, writing factors
//       to <dir>/factors and printing timings, fit and I/O statistics.
//       schedule: mc | fo | zo | ho | sn | rnd   policy: lru | mru | for
//       prefetch-depth > 0 enables the asynchronous Phase-2 pipeline
//       (loads issued that many steps ahead, writebacks in the background);
//       0 keeps the synchronous engine. Results are identical either way.
//
//   tpcp_tool simulate  <parts> <buffer-fraction>
//       Prints the exact per-virtual-iteration swap table for a cubic grid
//       (no data needed — swap counts are configuration-determined).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/swap_simulator.h"
#include "core/two_phase_cp.h"
#include "data/synthetic.h"
#include "storage/serializer.h"
#include "util/format.h"

using namespace tpcp;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage:\n"
      "  %s generate  <dir> <I> <J> <K> <parts> [rank=10] [density=1.0] "
      "[seed=42]\n"
      "  %s decompose <dir> <rank> [schedule=ho] [policy=for] "
      "[buffer-fraction=0.5] [prefetch-depth=0] [io-threads=2]\n"
      "  %s simulate  <parts> <buffer-fraction>\n",
      argv0, argv0, argv0);
  return 2;
}

bool ParseSchedule(const std::string& name, ScheduleType* out) {
  if (name == "mc") *out = ScheduleType::kModeCentric;
  else if (name == "fo") *out = ScheduleType::kFiberOrder;
  else if (name == "zo") *out = ScheduleType::kZOrder;
  else if (name == "ho") *out = ScheduleType::kHilbertOrder;
  else if (name == "sn") *out = ScheduleType::kSnakeOrder;
  else if (name == "rnd") *out = ScheduleType::kRandomOrder;
  else return false;
  return true;
}

bool ParsePolicy(const std::string& name, PolicyType* out) {
  if (name == "lru") *out = PolicyType::kLru;
  else if (name == "mru") *out = PolicyType::kMru;
  else if (name == "for") *out = PolicyType::kForward;
  else return false;
  return true;
}

int Generate(int argc, char** argv) {
  if (argc < 7) return Usage(argv[0]);
  const std::string dir = argv[2];
  LowRankSpec spec;
  spec.shape = Shape({std::atoll(argv[3]), std::atoll(argv[4]),
                      std::atoll(argv[5])});
  const int64_t parts = std::atoll(argv[6]);
  spec.rank = argc > 7 ? std::atoll(argv[7]) : 10;
  spec.density = argc > 8 ? std::atof(argv[8]) : 1.0;
  spec.seed = argc > 9 ? static_cast<uint64_t>(std::atoll(argv[9])) : 42;
  spec.noise_level = 0.05;

  auto env = NewPosixEnv(dir);
  GridPartition grid = GridPartition::Uniform(spec.shape, parts);
  BlockTensorStore store(env.get(), "tensor", grid);
  if (Status s = GenerateLowRankIntoStore(spec, &store); !s.ok()) {
    std::fprintf(stderr, "generate failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto bytes = store.TotalBytes();
  std::printf("wrote %s tensor as %lld blocks (%s) under %s/tensor\n",
              spec.shape.ToString().c_str(),
              static_cast<long long>(grid.NumBlocks()),
              bytes.ok() ? HumanBytes(*bytes).c_str() : "?",
              dir.c_str());
  return 0;
}

int Decompose(int argc, char** argv) {
  if (argc < 4) return Usage(argv[0]);
  const std::string dir = argv[2];
  TwoPhaseCpOptions options;
  options.rank = std::atoll(argv[3]);
  if (argc > 4 && !ParseSchedule(argv[4], &options.schedule)) {
    return Usage(argv[0]);
  }
  if (argc > 5 && !ParsePolicy(argv[5], &options.policy)) {
    return Usage(argv[0]);
  }
  if (argc > 6) options.buffer_fraction = std::atof(argv[6]);
  if (argc > 7) options.prefetch_depth = std::atoi(argv[7]);
  if (argc > 8) options.io_threads = std::max(1, std::atoi(argv[8]));
  if (options.prefetch_depth < 0) return Usage(argv[0]);

  auto env = NewPosixEnv(dir);
  // Recover the grid geometry from the stored block files.
  const auto files = env->ListFiles("tensor/");
  if (files.empty()) {
    std::fprintf(stderr, "no tensor blocks under %s/tensor "
                 "(run `generate` first)\n", dir.c_str());
    return 1;
  }
  // Block files are named block_<k1>_<k2>_..._<kN>; the maximum index per
  // position plus one gives the partition counts.
  std::vector<int64_t> max_index;
  for (const std::string& name : files) {
    const size_t base = name.rfind("block_");
    if (base == std::string::npos) continue;
    std::vector<int64_t> coords;
    const char* p = name.c_str() + base + 6;
    while (*p != '\0') {
      coords.push_back(std::strtoll(p, const_cast<char**>(&p), 10));
      if (*p == '_') ++p;
    }
    if (max_index.empty()) max_index.assign(coords.size(), 0);
    for (size_t i = 0; i < coords.size() && i < max_index.size(); ++i) {
      max_index[i] = std::max(max_index[i], coords[i]);
    }
  }
  std::vector<int64_t> parts;
  for (int64_t m : max_index) parts.push_back(m + 1);
  // Derive the tensor shape by summing block extents along each mode.
  // Read one block per partition along each mode.
  std::vector<int64_t> dims(parts.size(), 0);
  {
    // Probe blocks (k,0,...,0), (0,k,...,0), ... for their extents.
    auto probe = [&](int mode, int64_t k) -> int64_t {
      std::string name = "tensor/block";
      for (size_t i = 0; i < parts.size(); ++i) {
        name += "_";
        name += std::to_string(i == static_cast<size_t>(mode) ? k : 0);
      }
      auto t = ReadTensor(env.get(), name);
      if (!t.ok()) return -1;
      return t->dim(mode);
    };
    for (size_t m = 0; m < parts.size(); ++m) {
      for (int64_t k = 0; k < parts[m]; ++k) {
        const int64_t extent = probe(static_cast<int>(m), k);
        if (extent < 0) {
          std::fprintf(stderr, "missing block while probing geometry\n");
          return 1;
        }
        dims[m] += extent;
      }
    }
  }

  GridPartition grid(Shape(dims), parts);
  BlockTensorStore input(env.get(), "tensor", grid);
  BlockFactorStore factors(env.get(), "factors", grid, options.rank);
  TwoPhaseCp engine(&input, &factors, options);
  auto k = engine.Run();
  if (!k.ok()) {
    std::fprintf(stderr, "decompose failed: %s\n",
                 k.status().ToString().c_str());
    return 1;
  }
  const TwoPhaseCpResult& r = engine.result();
  std::printf("decomposed %s (grid %s) at rank %lld [%s + %s]\n",
              grid.tensor_shape().ToString().c_str(), grid.ToString().c_str(),
              static_cast<long long>(options.rank),
              ScheduleTypeName(options.schedule),
              PolicyTypeName(options.policy));
  std::printf("  phase 1: %.2fs over %lld blocks (mean block fit %.4f)\n",
              r.phase1_seconds, static_cast<long long>(r.blocks_decomposed),
              r.phase1_mean_block_fit);
  std::printf("  phase 2: %.2fs, %d virtual iterations (%s), surrogate fit "
              "%.4f\n",
              r.phase2_seconds, r.virtual_iterations,
              r.converged ? "converged" : "cap", r.surrogate_fit);
  std::printf("  buffer:  %.2f swaps/virtual-iteration, hit rate %.1f%%\n",
              r.swaps_per_virtual_iteration,
              100.0 * r.buffer_stats.HitRate());
  std::printf("  overlap: prefetch depth %d, %llu prefetch hits, "
              "%.2fs stalled, %.2fs writing back\n",
              options.prefetch_depth,
              static_cast<unsigned long long>(r.buffer_stats.prefetch_hits),
              r.buffer_stats.stall_seconds,
              r.buffer_stats.writeback_seconds);
  std::printf("  I/O:     %s\n", env->stats().ToString().c_str());
  std::printf("factors written under %s/factors\n", dir.c_str());
  return 0;
}

int Simulate(int argc, char** argv) {
  if (argc < 4) return Usage(argv[0]);
  const int64_t parts = std::atoll(argv[2]);
  const double fraction = std::atof(argv[3]);
  if (parts < 2 || fraction <= 0.0 || fraction > 1.0) return Usage(argv[0]);

  std::printf("swaps per virtual iteration, %lld^3 partitions, buffer %.3f "
              "of total requirement\n",
              static_cast<long long>(parts), fraction);
  std::printf("%-6s %10s %10s %10s\n", "sched", "LRU", "MRU", "FOR");
  for (ScheduleType schedule :
       {ScheduleType::kModeCentric, ScheduleType::kFiberOrder,
        ScheduleType::kZOrder, ScheduleType::kHilbertOrder,
        ScheduleType::kSnakeOrder, ScheduleType::kRandomOrder}) {
    std::printf("%-6s", ScheduleTypeName(schedule));
    for (PolicyType policy :
         {PolicyType::kLru, PolicyType::kMru, PolicyType::kForward}) {
      SwapSimConfig config;
      config.grid = GridPartition::Uniform(Shape({64, 64, 64}), parts);
      config.rank = 8;
      config.schedule = schedule;
      config.policy = policy;
      config.buffer_fraction = fraction;
      std::printf(" %10.2f",
                  SimulateSwaps(config).swaps_per_virtual_iteration);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const std::string command = argv[1];
  if (command == "generate") return Generate(argc, argv);
  if (command == "decompose") return Decompose(argc, argv);
  if (command == "simulate") return Simulate(argc, argv);
  return Usage(argv[0]);
}
